//! OPW — the opening-window online algorithm (paper §3.2, attributed to
//! Meratnia & de By / Keogh et al.).
//!
//! The window `[P_s, …, P_k]` grows while every buffered point stays within
//! ζ of the line `P_s P_k`; each growth step re-checks the whole window, so
//! the algorithm is `O(n²)` in the worst case and is *not* one-pass.

use crate::window::{WindowDecision, WindowPolicy, WindowSimplifier};
use traj_geo::{DirectedSegment, Point};
use traj_model::{
    traits::validate_epsilon, BatchSimplifier, SimplifiedTrajectory, StreamingSimplifier,
    Trajectory, TrajectoryError,
};

/// Window policy that checks every buffered point (the defining behaviour of
/// OPW).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpwPolicy;

impl WindowPolicy for OpwPolicy {
    const NAME: &'static str = "OPW";
    const NEEDS_BUFFER: bool = true;

    fn reset(&mut self, _start: Point) {}

    fn add_point(&mut self, _p: Point) {}

    fn decide(
        &mut self,
        start: Point,
        candidate: Point,
        epsilon: f64,
        buffer: &[Point],
    ) -> WindowDecision {
        let seg = DirectedSegment::new(start, candidate);
        for p in buffer {
            if seg.distance_to_line(p) > epsilon {
                return WindowDecision::Emit;
            }
        }
        WindowDecision::Grow
    }
}

/// Streaming OPW simplifier.
pub type OpeningWindowStream = WindowSimplifier<OpwPolicy>;

/// Batch front end for OPW.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpeningWindow;

impl OpeningWindow {
    /// Creates the OPW simplifier.
    pub fn new() -> Self {
        Self
    }

    /// Creates a streaming instance with the given error bound.
    pub fn stream(epsilon: f64) -> OpeningWindowStream {
        WindowSimplifier::new(OpwPolicy, epsilon)
    }
}

impl BatchSimplifier for OpeningWindow {
    fn name(&self) -> &'static str {
        "OPW"
    }

    fn simplify(
        &self,
        trajectory: &Trajectory,
        epsilon: f64,
    ) -> Result<SimplifiedTrajectory, TrajectoryError> {
        validate_epsilon(epsilon)?;
        let mut stream = Self::stream(epsilon);
        let mut segments = Vec::new();
        for &p in trajectory.points() {
            stream.push(p, &mut segments);
        }
        stream.finish(&mut segments);
        Ok(SimplifiedTrajectory::new(segments, trajectory.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_line_error(traj: &Trajectory, out: &SimplifiedTrajectory) -> f64 {
        traj.points()
            .iter()
            .map(|p| {
                out.segments()
                    .iter()
                    .map(|s| s.distance_to_line(p))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    }

    fn wavy(n: usize) -> Trajectory {
        Trajectory::from_xy(
            &(0..n)
                .map(|i| {
                    let t = i as f64 * 0.15;
                    (t * 20.0, (t).sin() * 30.0 + (t * 2.3).cos() * 5.0)
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn straight_line_is_one_segment() {
        let traj = Trajectory::from_xy(&(0..50).map(|i| (i as f64 * 3.0, 0.0)).collect::<Vec<_>>());
        let out = OpeningWindow::new().simplify(&traj, 1.0).unwrap();
        assert_eq!(out.num_segments(), 1);
        assert_eq!(out.validate(), Ok(()));
    }

    #[test]
    fn error_bound_holds() {
        let traj = wavy(400);
        for zeta in [2.0, 5.0, 12.0, 30.0] {
            let out = OpeningWindow::new().simplify(&traj, zeta).unwrap();
            assert!(
                max_line_error(&traj, &out) <= zeta + 1e-9,
                "OPW violates ζ = {zeta}"
            );
            assert_eq!(out.validate(), Ok(()));
        }
    }

    #[test]
    fn compression_improves_with_larger_epsilon() {
        let traj = wavy(500);
        let tight = OpeningWindow::new().simplify(&traj, 2.0).unwrap();
        let loose = OpeningWindow::new().simplify(&traj, 25.0).unwrap();
        assert!(loose.num_segments() < tight.num_segments());
    }

    #[test]
    fn opw_is_not_single_pass_conceptually() {
        // The policy revisits buffered points: with k points in the window
        // the decision is O(k).  Verify the buffer actually participates by
        // constructing a case where only an *old* point violates the new
        // line (the candidate itself is close to the anchor line).
        let traj = Trajectory::from_xyt(&[
            (0.0, 0.0, 0.0),
            (10.0, 6.0, 1.0),  // bulges upward
            (20.0, 0.0, 2.0),  // back on the axis
            (30.0, -6.0, 3.0), // bulges downward → old bulge now violates
            (40.0, 0.0, 4.0),
        ])
        .unwrap();
        let out = OpeningWindow::new().simplify(&traj, 5.0).unwrap();
        assert!(out.num_segments() >= 2);
        assert!(max_line_error(&traj, &out) <= 5.0 + 1e-9);
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let traj = wavy(10);
        assert!(OpeningWindow::new().simplify(&traj, -1.0).is_err());
    }

    #[test]
    fn name() {
        assert_eq!(OpeningWindow::new().name(), "OPW");
        assert_eq!(OpeningWindow::stream(1.0).name(), "OPW");
    }
}
