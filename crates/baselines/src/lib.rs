//! # traj-baselines
//!
//! The baseline trajectory simplification algorithms the OPERB paper
//! (Lin et al., VLDB 2017) compares against, plus a few extra context
//! baselines:
//!
//! * [`DouglasPeucker`] — the classic batch top-down algorithm DP
//!   (Douglas & Peucker 1973; paper §3.2, Figure 3), `O(n²)` time.
//! * [`TdTr`] — DP with the *synchronous Euclidean distance* instead of the
//!   perpendicular distance (Meratnia & de By, related work \[15\]).
//! * [`OpeningWindow`] — the online opening-window algorithm OPW
//!   (paper §3.2), `O(n²)` time.
//! * [`Bqs`] — the Bounded Quadrant System (Liu et al., ICDE 2015): an
//!   opening-window algorithm that bounds the in-window distances with at
//!   most eight significant points per quadrant and falls back to a full
//!   check when the bounds are inconclusive; `O(n²)` worst case.
//! * [`Fbqs`] — Fast BQS: the linear-time variant that starts a new window
//!   whenever the bounds are inconclusive; the fastest pre-existing LS
//!   algorithm and the main efficiency baseline of the paper.
//! * [`UniformSampling`], [`DeadReckoning`] — simple non-error-bounded /
//!   prediction-based baselines used in examples.
//! * [`delta`] — a lossless delta encoding of trajectories (related work
//!   \[19\]) to contrast lossy and lossless compression ratios.
//!
//! All lossy algorithms implement [`traj_model::BatchSimplifier`]; the
//! online ones also implement [`traj_model::StreamingSimplifier`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bqs;
pub mod delta;
pub mod dp;
pub mod opw;
pub mod sampling;
pub mod window;

pub use bqs::{Bqs, BqsStream, Fbqs, FbqsStream};
pub use delta::DeltaCodec;
pub use dp::{DistanceKind, DouglasPeucker, TdTr};
pub use opw::{OpeningWindow, OpeningWindowStream};
pub use sampling::{DeadReckoning, UniformSampling};
