//! Dataset generation: profile + road network + motion model → trajectories.

use crate::motion::{MotionConfig, VehicleSimulator};
use crate::profiles::{DatasetKind, DatasetProfile};
use crate::rng::{Rng, SmallRng};
use crate::road_network::GridNetwork;
use traj_model::Trajectory;

/// Deterministic synthetic dataset generator.
///
/// Given a [`DatasetProfile`] and a seed, the generator produces the same
/// trajectories every time, which keeps the experiment harness reproducible
/// across runs and machines.
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    profile: DatasetProfile,
    seed: u64,
}

impl DatasetGenerator {
    /// Creates a generator for a profile with an explicit seed.
    pub fn new(profile: DatasetProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// Convenience constructor: the default profile of a dataset kind with a
    /// per-dataset default seed.
    pub fn for_kind(kind: DatasetKind, seed: u64) -> Self {
        Self::new(kind.profile(), seed)
    }

    /// The profile being generated.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Generates a single trajectory with `num_points` points.
    ///
    /// `index` selects the trajectory within the dataset (it participates in
    /// the RNG stream so different trajectories differ).
    pub fn generate_trajectory(&self, index: usize, num_points: usize) -> Trajectory {
        let p = &self.profile;
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index as u64),
        );
        let num_points = num_points.max(2);

        // Enough road for the whole drive (with slack for stops).
        let expected_duration = num_points as f64 * p.mean_sampling_interval();
        let route_length = (expected_duration * p.mean_speed_mps * 1.2).max(4.0 * p.block_size_m);

        let network = GridNetwork::new(p.block_size_m, p.turn_probability);
        let route = if p.kind == DatasetKind::GeoLife && rng.gen_bool(0.5) {
            // Half of the GeoLife-like trips are free-moving (walking or
            // cycling) rather than grid constrained.
            network.sample_free_route(&mut rng, route_length)
        } else {
            network.sample_route(&mut rng, route_length)
        };

        let motion = MotionConfig {
            mean_speed_mps: p.mean_speed_mps,
            speed_stddev_mps: p.speed_stddev_mps,
            min_sampling_interval: p.min_sampling_interval,
            max_sampling_interval: p.max_sampling_interval,
            stop_probability: p.stop_probability,
            gps_noise_m: p.gps_noise_m,
        };
        VehicleSimulator::new(motion).drive(&mut rng, &route, num_points, 0.0)
    }

    /// Generates the whole dataset: `profile.num_trajectories` trajectories
    /// of `profile.points_per_trajectory` points each.
    pub fn generate(&self) -> Vec<Trajectory> {
        (0..self.profile.num_trajectories)
            .map(|i| self.generate_trajectory(i, self.profile.points_per_trajectory))
            .collect()
    }

    /// Generates `count` trajectories of `num_points` points each (used by
    /// the scaling experiments of Figure 12, which sweep the trajectory
    /// size).
    pub fn generate_sized(&self, count: usize, num_points: usize) -> Vec<Trajectory> {
        (0..count)
            .map(|i| self.generate_trajectory(i, num_points))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let gen = DatasetGenerator::new(
            DatasetProfile::taxi()
                .with_num_trajectories(3)
                .with_points_per_trajectory(500),
            1,
        );
        let data = gen.generate();
        assert_eq!(data.len(), 3);
        for traj in &data {
            assert_eq!(traj.len(), 500);
        }
    }

    #[test]
    fn deterministic_per_seed_and_index() {
        let gen_a = DatasetGenerator::for_kind(DatasetKind::SerCar, 7);
        let gen_b = DatasetGenerator::for_kind(DatasetKind::SerCar, 7);
        let gen_c = DatasetGenerator::for_kind(DatasetKind::SerCar, 8);
        assert_eq!(
            gen_a.generate_trajectory(0, 200),
            gen_b.generate_trajectory(0, 200)
        );
        assert_ne!(
            gen_a.generate_trajectory(0, 200),
            gen_a.generate_trajectory(1, 200)
        );
        assert_ne!(
            gen_a.generate_trajectory(0, 200),
            gen_c.generate_trajectory(0, 200)
        );
    }

    #[test]
    fn all_profiles_generate_valid_trajectories() {
        for kind in DatasetKind::ALL {
            let profile = kind
                .profile()
                .with_num_trajectories(2)
                .with_points_per_trajectory(300);
            let data = DatasetGenerator::new(profile, 3).generate();
            for traj in &data {
                assert_eq!(traj.len(), 300);
                // Valid trajectory: strictly increasing time, finite coords.
                assert!(Trajectory::new(traj.points().to_vec()).is_ok());
                // The object actually moves.
                assert!(traj.path_length() > 0.0);
            }
        }
    }

    #[test]
    fn sampling_interval_matches_profile() {
        let gen = DatasetGenerator::for_kind(DatasetKind::Taxi, 5);
        let traj = gen.generate_trajectory(0, 400);
        let mean_dt = traj.mean_sampling_interval();
        assert!((mean_dt - 60.0).abs() < 1.0, "Taxi ≈ 60 s, got {mean_dt}");

        let gen = DatasetGenerator::for_kind(DatasetKind::SerCar, 5);
        let traj = gen.generate_trajectory(0, 400);
        let mean_dt = traj.mean_sampling_interval();
        assert!(
            (3.0..=5.0).contains(&mean_dt),
            "SerCar ∈ [3, 5] s, got {mean_dt}"
        );
    }

    #[test]
    fn taxi_moves_farther_between_samples_than_geolife() {
        // Coarser sampling + faster vehicles ⇒ larger inter-point spacing;
        // this is the property that gives Taxi the highest compression
        // ratios in the paper.
        let taxi = DatasetGenerator::for_kind(DatasetKind::Taxi, 2).generate_trajectory(0, 300);
        let geolife =
            DatasetGenerator::for_kind(DatasetKind::GeoLife, 2).generate_trajectory(0, 300);
        let spacing = |t: &Trajectory| t.path_length() / (t.len() - 1) as f64;
        assert!(
            spacing(&taxi) > 3.0 * spacing(&geolife),
            "taxi {} vs geolife {}",
            spacing(&taxi),
            spacing(&geolife)
        );
    }

    #[test]
    fn generate_sized_overrides_profile() {
        let gen = DatasetGenerator::for_kind(DatasetKind::Truck, 1);
        let data = gen.generate_sized(2, 123);
        assert_eq!(data.len(), 2);
        assert!(data.iter().all(|t| t.len() == 123));
    }
}
