//! # traj-data
//!
//! Trajectory workloads for the `trajsimp` workspace.
//!
//! The OPERB paper evaluates on four proprietary GPS corpora (Taxi, Truck,
//! SerCar, GeoLife — Table 1).  Those datasets are not redistributable, so
//! this crate provides two things:
//!
//! 1. **Synthetic generators** that emulate the statistical properties that
//!    matter to line-simplification algorithms — sampling interval,
//!    urban-grid turning behaviour, speed profile and GPS noise — one
//!    [`DatasetProfile`] per paper dataset (see `DESIGN.md`, "Substitutions"
//!    for the rationale).  Generation is deterministic given a seed.
//! 2. **File IO** ([`io`]) so the real corpora (or any CSV / GeoLife `.plt`
//!    data) can be dropped in instead of the synthetic workloads.
//!
//! The generators build trajectories in a local planar frame (meters), which
//! is the coordinate system every algorithm in the workspace consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod io;
pub mod motion;
pub mod profiles;
pub mod rng;
pub mod road_network;
pub mod stats;

pub use generator::DatasetGenerator;
pub use motion::{MotionConfig, VehicleSimulator};
pub use profiles::{DatasetKind, DatasetProfile};
pub use road_network::{GridNetwork, RouteKind};
pub use stats::DatasetStats;
