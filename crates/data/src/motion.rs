//! Vehicle motion simulation: turns a route polyline into a timestamped,
//! noisy GPS trajectory.
//!
//! The simulator walks along the route with a fluctuating speed, pauses at a
//! configurable fraction of waypoints (traffic lights / pick-ups), samples
//! the position at the profile's sampling interval and perturbs each fix
//! with Gaussian GPS noise.  These are exactly the properties that drive a
//! line-simplification algorithm's behaviour: sampling density along the
//! road, deviation amplitude (noise) and turn sharpness.

use crate::rng::Rng;
use traj_geo::Point;
use traj_model::Trajectory;

/// Motion and sampling parameters for the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionConfig {
    /// Mean cruising speed in m/s.
    pub mean_speed_mps: f64,
    /// Standard deviation of the per-sample speed fluctuation in m/s.
    pub speed_stddev_mps: f64,
    /// Minimum sampling interval in seconds.
    pub min_sampling_interval: f64,
    /// Maximum sampling interval in seconds.
    pub max_sampling_interval: f64,
    /// Probability of a stop (zero speed for a few samples) at a waypoint.
    pub stop_probability: f64,
    /// Standard deviation of the GPS noise in meters.
    pub gps_noise_m: f64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        Self {
            mean_speed_mps: 10.0,
            speed_stddev_mps: 2.0,
            min_sampling_interval: 5.0,
            max_sampling_interval: 5.0,
            stop_probability: 0.1,
            gps_noise_m: 3.0,
        }
    }
}

/// Simulates a vehicle driving along a route.
#[derive(Debug, Clone, Copy)]
pub struct VehicleSimulator {
    config: MotionConfig,
}

impl VehicleSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MotionConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MotionConfig {
        &self.config
    }

    /// Samples a standard-normal variate (Box–Muller; avoids an extra
    /// dependency on a distributions crate).
    fn gaussian<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Drives along `route` emitting `num_points` GPS fixes starting at time
    /// `t0` (seconds).  The route is traversed repeatedly (ping-pong) if it
    /// is too short for the requested number of points.
    pub fn drive<R: Rng>(
        &self,
        rng: &mut R,
        route: &[Point],
        num_points: usize,
        t0: f64,
    ) -> Trajectory {
        assert!(route.len() >= 2, "a route needs at least two waypoints");
        assert!(num_points >= 2, "a trajectory needs at least two points");
        let cfg = &self.config;

        let mut points = Vec::with_capacity(num_points);
        let mut t = t0;
        // Position along the route: segment index + distance into it.
        let mut seg = 0usize;
        let mut offset = 0.0f64;
        let mut forward = true;
        let mut stop_timer = 0.0f64;

        for _ in 0..num_points {
            // Record the current (noisy) position.
            let pos = position_on(route, seg, offset, forward);
            let noisy = Point::new(
                pos.x + Self::gaussian(rng) * cfg.gps_noise_m,
                pos.y + Self::gaussian(rng) * cfg.gps_noise_m,
                t,
            );
            points.push(noisy);

            // Advance time by one sampling interval.
            let dt = if cfg.max_sampling_interval > cfg.min_sampling_interval {
                rng.gen_range(cfg.min_sampling_interval..=cfg.max_sampling_interval)
            } else {
                cfg.min_sampling_interval
            };
            t += dt;

            // Advance position.
            let speed = if stop_timer > 0.0 {
                stop_timer -= dt;
                0.0
            } else {
                (cfg.mean_speed_mps + Self::gaussian(rng) * cfg.speed_stddev_mps).max(0.0)
            };
            let mut travel = speed * dt;
            while travel > 0.0 {
                let (a, b) = segment_endpoints(route, seg, forward);
                let seg_len = a.distance(&b);
                let remaining = seg_len - offset;
                if travel < remaining {
                    offset += travel;
                    travel = 0.0;
                } else {
                    travel -= remaining;
                    offset = 0.0;
                    // Arrived at a waypoint: maybe stop.
                    if rng.gen_bool(cfg.stop_probability) {
                        stop_timer = rng.gen_range(1.0..30.0);
                        travel = 0.0;
                    }
                    // Move to the next segment, ping-ponging at the ends.
                    if forward {
                        if seg + 1 < route.len() - 1 {
                            seg += 1;
                        } else {
                            forward = false;
                        }
                    } else if seg > 0 {
                        seg -= 1;
                    } else {
                        forward = true;
                    }
                }
            }
        }
        Trajectory::new_unchecked(points)
    }
}

/// The endpoints of route segment `seg` in traversal order.
fn segment_endpoints(route: &[Point], seg: usize, forward: bool) -> (Point, Point) {
    if forward {
        (route[seg], route[seg + 1])
    } else {
        (route[seg + 1], route[seg])
    }
}

/// The position `offset` meters into route segment `seg`, measured from the
/// segment's start in the current traversal direction.
fn position_on(route: &[Point], seg: usize, offset: f64, forward: bool) -> Point {
    let (a, b) = segment_endpoints(route, seg, forward);
    let len = a.distance(&b);
    if len == 0.0 {
        return a;
    }
    a.lerp(&b, (offset / len).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn straight_route() -> Vec<Point> {
        (0..20).map(|i| Point::xy(i as f64 * 500.0, 0.0)).collect()
    }

    #[test]
    fn produces_requested_number_of_points() {
        let sim = VehicleSimulator::new(MotionConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let traj = sim.drive(&mut rng, &straight_route(), 500, 0.0);
        assert_eq!(traj.len(), 500);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let sim = VehicleSimulator::new(MotionConfig {
            min_sampling_interval: 1.0,
            max_sampling_interval: 5.0,
            ..MotionConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(2);
        let traj = sim.drive(&mut rng, &straight_route(), 300, 100.0);
        assert_eq!(traj.first().t, 100.0);
        for w in traj.points().windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn fixed_sampling_interval_is_respected() {
        let sim = VehicleSimulator::new(MotionConfig {
            min_sampling_interval: 60.0,
            max_sampling_interval: 60.0,
            ..MotionConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let traj = sim.drive(&mut rng, &straight_route(), 50, 0.0);
        for w in traj.points().windows(2) {
            assert!((w[1].t - w[0].t - 60.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_free_straight_drive_stays_on_the_road() {
        let sim = VehicleSimulator::new(MotionConfig {
            gps_noise_m: 0.0,
            stop_probability: 0.0,
            ..MotionConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(4);
        let traj = sim.drive(&mut rng, &straight_route(), 200, 0.0);
        for p in traj.points() {
            assert!(p.y.abs() < 1e-9, "left the road: {p}");
            assert!(p.x >= -1e-9);
        }
    }

    #[test]
    fn gps_noise_perturbs_positions() {
        let noisy = VehicleSimulator::new(MotionConfig {
            gps_noise_m: 10.0,
            ..MotionConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(5);
        let traj = noisy.drive(&mut rng, &straight_route(), 300, 0.0);
        let max_dev = traj.points().iter().map(|p| p.y.abs()).fold(0.0, f64::max);
        assert!(max_dev > 1.0, "noise should push fixes off the road");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let sim = VehicleSimulator::new(MotionConfig::default());
        let a = sim.drive(&mut SmallRng::seed_from_u64(9), &straight_route(), 100, 0.0);
        let b = sim.drive(&mut SmallRng::seed_from_u64(9), &straight_route(), 100, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn short_route_is_traversed_back_and_forth() {
        // Two waypoints only and far more driving than the route length: the
        // simulator must not panic and must keep positions within the route
        // bounding box (plus noise, which is zero here).
        let sim = VehicleSimulator::new(MotionConfig {
            gps_noise_m: 0.0,
            mean_speed_mps: 30.0,
            stop_probability: 0.0,
            ..MotionConfig::default()
        });
        let route = vec![Point::xy(0.0, 0.0), Point::xy(300.0, 0.0)];
        let mut rng = SmallRng::seed_from_u64(6);
        let traj = sim.drive(&mut rng, &route, 400, 0.0);
        for p in traj.points() {
            assert!(p.x >= -1e-6 && p.x <= 300.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_single_waypoint_routes() {
        let sim = VehicleSimulator::new(MotionConfig::default());
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = sim.drive(&mut rng, &[Point::xy(0.0, 0.0)], 10, 0.0);
    }
}
