//! A minimal grid road network and route sampler.
//!
//! The synthetic workloads emulate vehicles that drive on an urban (or
//! highway) grid: straight stretches along blocks, turns at intersections.
//! This is the structural property that produces the *anomalous line
//! segments* the OPERB-A patching method targets (paper §5.1, Figure 9 —
//! "crossroads"), and the turn frequency is what differentiates the paper's
//! datasets qualitatively.

use crate::rng::Rng;
use traj_geo::Point;

/// The kind of route sampled from the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Grid-constrained driving with turns at intersections (Taxi, Truck,
    /// SerCar profiles).
    GridDrive,
    /// Meandering free movement (pedestrian / bicycle legs of GeoLife).
    FreeWalk,
}

/// An axis-aligned grid road network with a fixed block size.
///
/// Intersections sit at integer multiples of `block_size`; roads are the
/// horizontal and vertical lines through them.  The network is conceptually
/// infinite — routes are random walks over intersections, so no adjacency
/// structure needs to be materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridNetwork {
    /// Distance between two adjacent intersections, in meters.
    pub block_size: f64,
    /// Probability of turning (left or right) at an intersection.
    pub turn_probability: f64,
}

/// A compass direction along the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heading {
    East,
    North,
    West,
    South,
}

impl Heading {
    fn unit(&self) -> (f64, f64) {
        match self {
            Heading::East => (1.0, 0.0),
            Heading::North => (0.0, 1.0),
            Heading::West => (-1.0, 0.0),
            Heading::South => (0.0, -1.0),
        }
    }

    fn left(&self) -> Heading {
        match self {
            Heading::East => Heading::North,
            Heading::North => Heading::West,
            Heading::West => Heading::South,
            Heading::South => Heading::East,
        }
    }

    fn right(&self) -> Heading {
        match self {
            Heading::East => Heading::South,
            Heading::South => Heading::West,
            Heading::West => Heading::North,
            Heading::North => Heading::East,
        }
    }
}

impl GridNetwork {
    /// Creates a grid network.
    pub fn new(block_size: f64, turn_probability: f64) -> Self {
        debug_assert!(block_size > 0.0);
        Self {
            block_size,
            turn_probability: turn_probability.clamp(0.0, 1.0),
        }
    }

    /// Samples a route (a polyline of waypoints, no timestamps) with
    /// `total_length` meters of driving, starting at the origin.
    ///
    /// Consecutive waypoints are intersections of the grid; the route is a
    /// random walk that goes straight with probability
    /// `1 − turn_probability` and turns left or right otherwise (never an
    /// immediate U-turn, matching how vehicles actually traverse road
    /// networks).
    pub fn sample_route<R: Rng>(&self, rng: &mut R, total_length: f64) -> Vec<Point> {
        let blocks = (total_length / self.block_size).ceil().max(1.0) as usize;
        let mut heading = match rng.gen_range(0..4) {
            0 => Heading::East,
            1 => Heading::North,
            2 => Heading::West,
            _ => Heading::South,
        };
        let mut x = 0.0;
        let mut y = 0.0;
        let mut route = Vec::with_capacity(blocks + 1);
        route.push(Point::xy(x, y));
        for _ in 0..blocks {
            if rng.gen_bool(self.turn_probability) {
                heading = if rng.gen_bool(0.5) {
                    heading.left()
                } else {
                    heading.right()
                };
            }
            let (dx, dy) = heading.unit();
            x += dx * self.block_size;
            y += dy * self.block_size;
            route.push(Point::xy(x, y));
        }
        route
    }

    /// Samples a meandering free-movement route (used by the GeoLife-like
    /// pedestrian / bicycle legs): heading changes smoothly instead of in
    /// 90° steps.
    pub fn sample_free_route<R: Rng>(&self, rng: &mut R, total_length: f64) -> Vec<Point> {
        let step = (self.block_size / 4.0).max(10.0);
        let steps = (total_length / step).ceil().max(1.0) as usize;
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut x = 0.0;
        let mut y = 0.0;
        let mut route = Vec::with_capacity(steps + 1);
        route.push(Point::xy(x, y));
        for _ in 0..steps {
            heading += rng.gen_range(-0.5..0.5);
            x += heading.cos() * step;
            y += heading.sin() * step;
            route.push(Point::xy(x, y));
        }
        route
    }

    /// Total polyline length of a route.
    pub fn route_length(route: &[Point]) -> f64 {
        route.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    #[test]
    fn route_has_requested_length() {
        let net = GridNetwork::new(500.0, 0.3);
        let mut rng = SmallRng::seed_from_u64(7);
        let route = net.sample_route(&mut rng, 10_000.0);
        let len = GridNetwork::route_length(&route);
        assert!(len >= 10_000.0);
        assert!(len <= 10_000.0 + 500.0 + 1e-9);
    }

    #[test]
    fn route_waypoints_sit_on_grid() {
        let net = GridNetwork::new(250.0, 0.5);
        let mut rng = SmallRng::seed_from_u64(42);
        let route = net.sample_route(&mut rng, 5_000.0);
        for p in &route {
            assert!((p.x / 250.0).fract().abs() < 1e-9);
            assert!((p.y / 250.0).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn segments_are_axis_aligned_blocks() {
        let net = GridNetwork::new(100.0, 0.4);
        let mut rng = SmallRng::seed_from_u64(3);
        let route = net.sample_route(&mut rng, 3_000.0);
        for w in route.windows(2) {
            let dx = (w[1].x - w[0].x).abs();
            let dy = (w[1].y - w[0].y).abs();
            assert!(
                (dx < 1e-9 && (dy - 100.0).abs() < 1e-9)
                    || (dy < 1e-9 && (dx - 100.0).abs() < 1e-9),
                "non-grid step {dx},{dy}"
            );
        }
    }

    #[test]
    fn zero_turn_probability_is_a_straight_road() {
        let net = GridNetwork::new(100.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let route = net.sample_route(&mut rng, 2_000.0);
        // All steps share one heading: the route is collinear.
        let first = route[0];
        let second = route[1];
        let dir = (second.x - first.x, second.y - first.y);
        for w in route.windows(2) {
            assert!(((w[1].x - w[0].x) - dir.0).abs() < 1e-9);
            assert!(((w[1].y - w[0].y) - dir.1).abs() < 1e-9);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let net = GridNetwork::new(300.0, 0.35);
        let a = net.sample_route(&mut SmallRng::seed_from_u64(5), 4_000.0);
        let b = net.sample_route(&mut SmallRng::seed_from_u64(5), 4_000.0);
        let c = net.sample_route(&mut SmallRng::seed_from_u64(6), 4_000.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn free_route_moves_with_bounded_steps() {
        let net = GridNetwork::new(300.0, 0.4);
        let mut rng = SmallRng::seed_from_u64(9);
        let route = net.sample_free_route(&mut rng, 2_000.0);
        assert!(route.len() > 10);
        let step = (300.0f64 / 4.0).max(10.0);
        for w in route.windows(2) {
            let d = w[0].distance(&w[1]);
            assert!((d - step).abs() < 1e-9);
        }
    }

    #[test]
    fn turn_probability_is_clamped() {
        let net = GridNetwork::new(100.0, 7.0);
        assert_eq!(net.turn_probability, 1.0);
        let net = GridNetwork::new(100.0, -1.0);
        assert_eq!(net.turn_probability, 0.0);
    }
}
