//! Trajectory file IO: a simple CSV format and the GeoLife `.plt` format.
//!
//! These readers let the real corpora of the paper (or any GPS log) be used
//! in place of the synthetic workloads.  Both parsers are line oriented,
//! skip malformed records instead of failing the whole file, and project
//! geodetic fixes to the local planar frame expected by the algorithms.

use std::io::{self, BufRead, Write};

use traj_geo::{GeoPoint, LocalProjection, Point};
use traj_model::{Trajectory, TrajectoryError};

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The file contained fewer than two usable data points.
    NotEnoughPoints,
    /// The resulting point sequence was not a valid trajectory.
    Trajectory(TrajectoryError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::NotEnoughPoints => write!(f, "fewer than two usable data points"),
            IoError::Trajectory(e) => write!(f, "invalid trajectory: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a planar CSV trajectory: one `x,y,t` record per line (header lines
/// and malformed lines are skipped).  Records are sorted by time and
/// duplicate timestamps are dropped, mirroring the clean-up the paper's
/// pipeline needs for out-of-order / duplicate points.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Trajectory, IoError> {
    let mut points: Vec<Point> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut fields = line.split(',').map(str::trim);
        let (Some(x), Some(y), Some(t)) = (fields.next(), fields.next(), fields.next()) else {
            continue;
        };
        let (Ok(x), Ok(y), Ok(t)) = (x.parse::<f64>(), y.parse::<f64>(), t.parse::<f64>()) else {
            continue;
        };
        let p = Point::new(x, y, t);
        if p.is_finite() {
            points.push(p);
        }
    }
    finalize(points)
}

/// Writes a planar CSV trajectory (the inverse of [`read_csv`]).
pub fn write_csv<W: Write>(writer: &mut W, trajectory: &Trajectory) -> io::Result<()> {
    for p in trajectory.points() {
        writeln!(writer, "{},{},{}", p.x, p.y, p.t)?;
    }
    Ok(())
}

/// Reads a GeoLife `.plt` file.
///
/// The format is: six header lines, then records
/// `lat,lon,0,altitude,days,date,time`.  The timestamp is taken from the
/// fractional-day field (column 5) converted to seconds; fixes are projected
/// to a local planar frame centred on the first fix.
pub fn read_plt<R: BufRead>(reader: R) -> Result<Trajectory, IoError> {
    let mut fixes: Vec<GeoPoint> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i < 6 {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 5 {
            continue;
        }
        let (Ok(lat), Ok(lon), Ok(days)) = (
            fields[0].parse::<f64>(),
            fields[1].parse::<f64>(),
            fields[4].parse::<f64>(),
        ) else {
            continue;
        };
        let t = days * 86_400.0;
        if lat.is_finite() && lon.is_finite() && t.is_finite() {
            fixes.push(GeoPoint::new(lon, lat, t));
        }
    }
    if fixes.len() < 2 {
        return Err(IoError::NotEnoughPoints);
    }
    let projection = LocalProjection::from_first_fix(&fixes);
    finalize(projection.project_all(&fixes))
}

/// Sorts by time, removes duplicate timestamps and validates.
fn finalize(mut points: Vec<Point>) -> Result<Trajectory, IoError> {
    points.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite timestamps"));
    points.dedup_by(|a, b| a.t == b.t);
    if points.len() < 2 {
        return Err(IoError::NotEnoughPoints);
    }
    Trajectory::new(points).map_err(IoError::Trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn csv_roundtrip() {
        let traj =
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (10.0, 5.0, 1.0), (20.0, 3.0, 2.0)]).unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &traj).unwrap();
        let parsed = read_csv(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, traj);
    }

    #[test]
    fn csv_skips_headers_and_garbage() {
        let data = "x,y,t\n0,0,0\nnot,a,number\n10,5,1\n\n20,3,2\n";
        let parsed = read_csv(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.point(1).x, 10.0);
    }

    #[test]
    fn csv_sorts_out_of_order_and_dedups() {
        // Out-of-order and duplicate points are exactly the transmission
        // issues the paper's introduction mentions.
        let data = "10,5,2\n0,0,0\n10,5,2\n5,1,1\n";
        let parsed = read_csv(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(parsed.len(), 3);
        assert!(parsed.points().windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn csv_too_few_points_is_an_error() {
        assert!(matches!(
            read_csv(BufReader::new("1,1,1\n".as_bytes())),
            Err(IoError::NotEnoughPoints)
        ));
        assert!(matches!(
            read_csv(BufReader::new("".as_bytes())),
            Err(IoError::NotEnoughPoints)
        ));
    }

    #[test]
    fn plt_parsing() {
        let data = "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n\
                    0,2,255,My Track,0,0,2,8421376\n0\n\
                    39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04\n\
                    39.984683,116.31845,0,492,39744.1202546296,2008-10-23,02:53:10\n\
                    39.984686,116.318417,0,492,39744.1203240741,2008-10-23,02:53:16\n";
        let traj = read_plt(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(traj.len(), 3);
        // First fix is the projection origin.
        assert!(traj.first().x.abs() < 1e-9);
        assert!(traj.first().y.abs() < 1e-9);
        // ~6 seconds between fixes.
        let dt = traj.point(1).t - traj.point(0).t;
        assert!((dt - 6.0).abs() < 0.5, "dt = {dt}");
        // The second fix is a couple of meters away.
        let d = traj.point(0).distance(&traj.point(1));
        assert!(d > 0.5 && d < 20.0, "d = {d}");
    }

    #[test]
    fn plt_with_only_headers_is_an_error() {
        let data = "a\nb\nc\nd\ne\nf\n";
        assert!(matches!(
            read_plt(BufReader::new(data.as_bytes())),
            Err(IoError::NotEnoughPoints)
        ));
    }

    #[test]
    fn error_display() {
        let e = IoError::NotEnoughPoints;
        assert!(e.to_string().contains("fewer than two"));
        let e = IoError::Trajectory(TrajectoryError::Empty);
        assert!(e.to_string().contains("invalid trajectory"));
    }
}
