//! A small, dependency-free pseudo-random number generator.
//!
//! The synthetic workload generators need reproducible randomness but the
//! workspace builds offline, so instead of depending on the `rand` crate
//! this module provides the tiny slice of its API the generators use: a
//! seedable small-state generator ([`SmallRng`], xoshiro256++) and a
//! [`Rng`] trait with uniform range sampling ([`Rng::gen_range`]) and
//! Bernoulli draws ([`Rng::gen_bool`]).
//!
//! The generator is **not** cryptographically secure — it only has to make
//! statistically plausible GPS tracks, deterministically per seed.

use std::ops::{Range, RangeInclusive};

/// A random number source: the minimal `rand::Rng`-style interface used by
/// the dataset generators.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (half-open or inclusive; `f64` or
    /// integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// A range that can be sampled uniformly — the workspace-local stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        debug_assert!(a <= b, "empty inclusive f64 range");
        // Dividing by 2^53 - 1 makes both endpoints reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        a + (b - a) * u
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the tiny spans the
                // generators use; acceptable for synthetic workloads.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )*};
}

impl_int_range!(i32, u32, i64, u64, usize);

/// xoshiro256++ — a fast, small-state generator with good statistical
/// quality (Blackman & Vigna 2019), seeded from a `u64` through SplitMix64
/// exactly like `rand`'s `SmallRng::seed_from_u64`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose whole state is derived from `seed` via
    /// SplitMix64 (so nearby seeds still give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&v));
            let w = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&w));
            let i = rng.gen_range(0..4);
            assert!((0..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
