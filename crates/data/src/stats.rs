//! Dataset statistics — the numbers reported in Table 1 of the paper.

use crate::profiles::DatasetKind;
use traj_model::json::JsonValue;
use traj_model::Trajectory;

/// Summary statistics of a (synthetic or real) trajectory dataset, matching
/// the columns of Table 1: number of trajectories, sampling rate, points per
/// trajectory and total point count.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset display name.
    pub name: String,
    /// Number of trajectories.
    pub num_trajectories: usize,
    /// Minimum observed sampling interval, seconds.
    pub min_sampling_interval: f64,
    /// Maximum observed sampling interval, seconds.
    pub max_sampling_interval: f64,
    /// Mean number of points per trajectory.
    pub mean_points_per_trajectory: f64,
    /// Total number of points across all trajectories.
    pub total_points: usize,
    /// Mean travelled path length per trajectory, meters.
    pub mean_path_length_m: f64,
}

impl DatasetStats {
    /// Computes the statistics of a dataset.
    pub fn compute(name: impl Into<String>, trajectories: &[Trajectory]) -> Self {
        let name = name.into();
        if trajectories.is_empty() {
            return Self {
                name,
                num_trajectories: 0,
                min_sampling_interval: 0.0,
                max_sampling_interval: 0.0,
                mean_points_per_trajectory: 0.0,
                total_points: 0,
                mean_path_length_m: 0.0,
            };
        }
        let total_points: usize = trajectories.iter().map(Trajectory::len).sum();
        let mut min_dt = f64::INFINITY;
        let mut max_dt: f64 = 0.0;
        for traj in trajectories {
            for w in traj.points().windows(2) {
                let dt = w[1].t - w[0].t;
                min_dt = min_dt.min(dt);
                max_dt = max_dt.max(dt);
            }
        }
        if !min_dt.is_finite() {
            min_dt = 0.0;
        }
        let mean_path_length_m = trajectories
            .iter()
            .map(Trajectory::path_length)
            .sum::<f64>()
            / trajectories.len() as f64;
        Self {
            name,
            num_trajectories: trajectories.len(),
            min_sampling_interval: min_dt,
            max_sampling_interval: max_dt,
            mean_points_per_trajectory: total_points as f64 / trajectories.len() as f64,
            total_points,
            mean_path_length_m,
        }
    }

    /// Computes statistics labelled with a paper dataset kind.
    pub fn for_kind(kind: DatasetKind, trajectories: &[Trajectory]) -> Self {
        Self::compute(kind.name(), trajectories)
    }

    /// Converts the statistics to a JSON object (one Table 1 row).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from(self.name.clone())),
            ("num_trajectories", JsonValue::from(self.num_trajectories)),
            (
                "min_sampling_interval",
                JsonValue::from(self.min_sampling_interval),
            ),
            (
                "max_sampling_interval",
                JsonValue::from(self.max_sampling_interval),
            ),
            (
                "mean_points_per_trajectory",
                JsonValue::from(self.mean_points_per_trajectory),
            ),
            ("total_points", JsonValue::from(self.total_points)),
            (
                "mean_path_length_m",
                JsonValue::from(self.mean_path_length_m),
            ),
        ])
    }

    /// Reconstructs statistics from the JSON produced by
    /// [`DatasetStats::to_json_value`]; `None` when a field is missing or
    /// has the wrong type.
    pub fn from_json_value(v: &JsonValue) -> Option<Self> {
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            num_trajectories: v.get("num_trajectories")?.as_usize()?,
            min_sampling_interval: v.get("min_sampling_interval")?.as_f64()?,
            max_sampling_interval: v.get("max_sampling_interval")?.as_f64()?,
            mean_points_per_trajectory: v.get("mean_points_per_trajectory")?.as_f64()?,
            total_points: v.get("total_points")?.as_usize()?,
            mean_path_length_m: v.get("mean_path_length_m")?.as_f64()?,
        })
    }

    /// Formats one row of a Table-1-like report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<8} {:>8} {:>6.0}-{:<6.0} {:>12.1} {:>12}",
            self.name,
            self.num_trajectories,
            self.min_sampling_interval,
            self.max_sampling_interval,
            self.mean_points_per_trajectory,
            self.total_points
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::Point;

    fn traj(n: usize, dt: f64) -> Trajectory {
        Trajectory::new_unchecked(
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64 * dt))
                .collect(),
        )
    }

    #[test]
    fn computes_basic_statistics() {
        let data = vec![traj(100, 5.0), traj(200, 5.0)];
        let stats = DatasetStats::compute("Test", &data);
        assert_eq!(stats.num_trajectories, 2);
        assert_eq!(stats.total_points, 300);
        assert!((stats.mean_points_per_trajectory - 150.0).abs() < 1e-9);
        assert!((stats.min_sampling_interval - 5.0).abs() < 1e-9);
        assert!((stats.max_sampling_interval - 5.0).abs() < 1e-9);
        assert!((stats.mean_path_length_m - ((99.0 * 10.0) + (199.0 * 10.0)) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset() {
        let stats = DatasetStats::compute("Empty", &[]);
        assert_eq!(stats.num_trajectories, 0);
        assert_eq!(stats.total_points, 0);
    }

    #[test]
    fn table_row_contains_name_and_counts() {
        let stats = DatasetStats::for_kind(DatasetKind::Taxi, &[traj(50, 60.0)]);
        let row = stats.table_row();
        assert!(row.contains("Taxi"));
        assert!(row.contains("50"));
    }

    #[test]
    fn mixed_sampling_intervals() {
        let a =
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 61.0)]).unwrap();
        let stats = DatasetStats::compute("Mixed", &[a]);
        assert!((stats.min_sampling_interval - 1.0).abs() < 1e-9);
        assert!((stats.max_sampling_interval - 60.0).abs() < 1e-9);
    }

    #[test]
    fn serializes_to_json() {
        let stats = DatasetStats::compute("Test", &[traj(10, 1.0)]);
        let json = stats.to_json_value().to_string();
        assert!(json.contains("\"name\":\"Test\""));
        let back = DatasetStats::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, stats);
    }
}
