//! Stress tests: many concurrent synthetic streams through the parallel
//! pipeline, asserting that **every** stream's output respects the
//! configured error bound and matches the stream's input size.

use traj_data::{DatasetGenerator, DatasetKind};
use traj_model::Trajectory;
use traj_pipeline::fleet::verify_error_bound;
use traj_pipeline::{
    compress_fleet, compress_fleet_sequential, DeviceId, FleetAlgorithm, PipelineConfig,
};

fn synthetic_fleet(
    kind: DatasetKind,
    count: usize,
    points: usize,
    seed: u64,
) -> Vec<(DeviceId, Trajectory)> {
    let generator = DatasetGenerator::for_kind(kind, seed);
    (0..count)
        .map(|i| (i as DeviceId, generator.generate_trajectory(i, points)))
        .collect()
}

/// Runs `fleet` through the pipeline with `algorithm` and asserts, per
/// stream: the error bound holds, the representation validates, and the
/// point count matches the input.
fn assert_fleet_error_bounded(
    fleet: &[(DeviceId, Trajectory)],
    algorithm_name: &str,
    epsilon: f64,
    workers: usize,
) {
    let algorithm = FleetAlgorithm::by_name(algorithm_name).expect("known algorithm");
    let config = PipelineConfig::new(epsilon)
        .with_workers(workers)
        .with_batch_size(128)
        .with_queue_capacity(16);
    let mut run = compress_fleet(fleet, &config, &algorithm);
    // The shared verification: result-per-stream, per-stream ζ bound.
    let worst = verify_error_bound(fleet, &mut run.results, epsilon)
        .unwrap_or_else(|e| panic!("{algorithm_name}: {e}"));
    assert!(worst >= 0.0);
    for ((device, traj), result) in fleet.iter().zip(&run.results) {
        assert_eq!(*device, result.device);
        assert_eq!(result.points, traj.len(), "device {device} point count");
        let simplified = result.output.as_ref().expect("verified above");
        assert_eq!(simplified.validate(), Ok(()), "device {device}");
    }
    assert_eq!(run.report.total_streams, fleet.len());
    assert_eq!(
        run.report.total_points,
        fleet.iter().map(|(_, t)| t.len()).sum::<usize>()
    );
}

#[test]
fn operb_two_hundred_concurrent_taxi_streams() {
    let fleet = synthetic_fleet(DatasetKind::Taxi, 200, 300, 20170401);
    assert_fleet_error_bounded(&fleet, "operb", 30.0, 4);
}

#[test]
fn operb_a_concurrent_streams_respect_bound() {
    let fleet = synthetic_fleet(DatasetKind::Truck, 100, 400, 7);
    assert_fleet_error_bounded(&fleet, "operb-a", 25.0, 4);
}

#[test]
fn fbqs_concurrent_streams_respect_bound() {
    let fleet = synthetic_fleet(DatasetKind::SerCar, 80, 250, 11);
    assert_fleet_error_bounded(&fleet, "fbqs", 20.0, 3);
}

#[test]
fn batch_dp_through_the_pipeline_respects_bound() {
    let fleet = synthetic_fleet(DatasetKind::GeoLife, 60, 200, 13);
    assert_fleet_error_bounded(&fleet, "dp", 15.0, 4);
}

#[test]
fn a_thousand_concurrent_streams() {
    // The headline scenario: 1,000 devices streaming concurrently.  Small
    // per-stream point counts keep the test fast; the concurrency (all
    // 1,000 streams open at once — compress_fleet interleaves round-robin)
    // is what is being exercised.
    let fleet = synthetic_fleet(DatasetKind::Taxi, 1_000, 60, 99);
    assert_fleet_error_bounded(&fleet, "operb", 35.0, 8);
}

#[test]
fn graceful_shutdown_mid_stream_loses_no_points() {
    // Feed 150 streams with deliberately awkward sizes — none a multiple
    // of the batch size, so every device has a partial chunk sitting in
    // the batching layer — and never close any of them.  finish() is the
    // graceful-shutdown path: it must flush every buffer, close every
    // stream and account for every single point.
    let fleet = synthetic_fleet(DatasetKind::Taxi, 150, 173, 31);
    for name in ["operb", "dp"] {
        let algorithm = FleetAlgorithm::by_name(name).expect("known algorithm");
        let config = PipelineConfig::new(30.0)
            .with_workers(4)
            .with_batch_size(64)
            .with_queue_capacity(8);
        let mut pipe = traj_pipeline::FleetPipeline::spawn(&config, &algorithm);
        for (device, traj) in &fleet {
            // Mid-stream: points pushed, stream left open.
            pipe.push_points(*device, traj.points());
        }
        let (mut results, report) = pipe.finish();
        assert_eq!(report.total_streams, fleet.len(), "{name}");
        assert_eq!(
            report.total_points,
            150 * 173,
            "{name}: every point accounted for"
        );
        let worst = verify_error_bound(&fleet, &mut results, 30.0)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(worst <= 30.0 + 1e-9);
        for ((device, traj), result) in fleet.iter().zip(&results) {
            assert_eq!(result.device, *device);
            assert_eq!(
                result.points,
                traj.len(),
                "{name}: device {device} lost points"
            );
            assert_eq!(
                result.output.as_ref().unwrap().original_len(),
                traj.len(),
                "{name}: device {device}"
            );
        }
    }
}

#[test]
fn parallel_equals_sequential_on_a_mixed_fleet() {
    let fleet = synthetic_fleet(DatasetKind::SerCar, 50, 300, 23);
    for name in ["operb", "operb-a", "fbqs", "dp"] {
        let algorithm = FleetAlgorithm::by_name(name).unwrap();
        let config = PipelineConfig::new(18.0)
            .with_workers(4)
            .with_batch_size(64);
        let mut par = compress_fleet(&fleet, &config, &algorithm);
        let seq = compress_fleet_sequential(&fleet, 18.0, &algorithm);
        par.results.sort_by_key(|r| r.device);
        for (p, s) in par.results.iter().zip(&seq.results) {
            assert_eq!(
                p.output.as_ref().unwrap(),
                s.output.as_ref().unwrap(),
                "{name}: device {}",
                p.device
            );
        }
    }
}
