//! High-level fleet compression: run a whole set of trajectories through
//! the pipeline (or through a sequential reference loop) and measure
//! throughput.
//!
//! [`compress_fleet`] emulates live ingest: it interleaves chunks across
//! all devices round-robin — thousands of streams are open concurrently,
//! exactly the multi-user load the pipeline is built for — instead of
//! feeding one trajectory after another.

use std::time::{Duration, Instant};

use traj_model::Trajectory;

use crate::algorithm::FleetAlgorithm;
use crate::config::PipelineConfig;
use crate::executor::{DeviceId, FleetPipeline, FleetResult, PipelineReport};

/// Output of a fleet run: every stream's result plus the throughput
/// report.
#[derive(Debug)]
pub struct FleetRun {
    /// One result per closed stream (arbitrary order; sort by
    /// [`FleetResult::device`] for deterministic processing).
    pub results: Vec<FleetResult>,
    /// Throughput accounting.
    pub report: PipelineReport,
}

/// A consumer of per-stream compression results.
///
/// The fleet drivers hand every finished stream to a sink as soon as it
/// becomes available, which is how downstream systems (the `traj-store`
/// storage engine, metrics collectors) receive pipeline output without
/// buffering the whole fleet in memory first.  `Vec<FleetResult>`
/// implements the trait for callers that do want the plain collection.
pub trait ResultSink {
    /// Consumes one closed stream's result.
    fn accept(&mut self, result: FleetResult);
}

impl ResultSink for Vec<FleetResult> {
    fn accept(&mut self, result: FleetResult) {
        self.push(result);
    }
}

/// Compresses a fleet through the parallel pipeline, interleaving chunks
/// across all devices (round-robin) so every stream is concurrently open.
///
/// Results arrive out of order; each entry's
/// [`device`](FleetResult::device) indexes back into `fleet`.
pub fn compress_fleet(
    fleet: &[(DeviceId, Trajectory)],
    config: &PipelineConfig,
    algorithm: &FleetAlgorithm,
) -> FleetRun {
    let mut results = Vec::with_capacity(fleet.len());
    let report = compress_fleet_with_sink(fleet, config, algorithm, &mut results);
    FleetRun { results, report }
}

/// [`compress_fleet`], but streaming every finished result into `sink` as
/// soon as it is available instead of collecting a `Vec` — the ingest path
/// of the `traj-store` storage engine.
pub fn compress_fleet_with_sink(
    fleet: &[(DeviceId, Trajectory)],
    config: &PipelineConfig,
    algorithm: &FleetAlgorithm,
    sink: &mut dyn ResultSink,
) -> PipelineReport {
    let mut pipe = FleetPipeline::spawn(config, algorithm);
    let chunk = config.batch_size.max(1);
    let mut offsets: Vec<usize> = vec![0; fleet.len()];
    // Worklist of still-open fleet indices, so each round costs O(open
    // streams) — a few closed-early streams must not make every later
    // round rescan the whole fleet.
    let mut open: Vec<usize> = (0..fleet.len()).collect();
    while !open.is_empty() {
        let mut i = 0;
        while i < open.len() {
            let index = open[i];
            let (device, traj) = &fleet[index];
            let points = traj.points();
            let end = (offsets[index] + chunk).min(points.len());
            pipe.push_points(*device, &points[offsets[index]..end]);
            offsets[index] = end;
            if end == points.len() {
                pipe.close(*device);
                open.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Keep memory bounded on very large fleets: hand off what is done.
        for result in pipe.drain_ready() {
            sink.accept(result);
        }
    }
    let (rest, report) = pipe.finish();
    for result in rest {
        sink.accept(result);
    }
    report
}

/// The sequential reference: the same algorithm over the same fleet on the
/// calling thread, one trajectory at a time.  This is the baseline the
/// pipeline's speedup is measured against.
pub fn compress_fleet_sequential(
    fleet: &[(DeviceId, Trajectory)],
    epsilon: f64,
    algorithm: &FleetAlgorithm,
) -> FleetRun {
    let started = Instant::now();
    let mut total_points = 0;
    let results: Vec<FleetResult> = fleet
        .iter()
        .map(|(device, traj)| {
            total_points += traj.len();
            let output = match algorithm {
                FleetAlgorithm::Streaming { factory, .. } => {
                    let mut simplifier = factory(epsilon);
                    let mut segments = Vec::new();
                    for &p in traj.points() {
                        simplifier.push(p, &mut segments);
                    }
                    simplifier.finish(&mut segments);
                    Ok(traj_model::SimplifiedTrajectory::new(segments, traj.len()))
                }
                FleetAlgorithm::Batch(s) => s.simplify(traj, epsilon),
            };
            FleetResult {
                device: *device,
                output,
                points: traj.len(),
            }
        })
        .collect();
    let elapsed = started.elapsed();
    FleetRun {
        results,
        report: PipelineReport {
            workers: 1,
            total_points,
            total_streams: fleet.len(),
            elapsed,
            worker_busy: vec![elapsed],
        },
    }
}

/// Sorts `results` by device and checks every stream's output against the
/// error bound, returning the worst observed error.
///
/// This is the verification every fleet consumer runs before trusting a
/// throughput number (`trajsimp fleet`, `pipeline_bench`, the stress
/// tests).  `fleet` must be the input the results were produced from,
/// sorted by device id as produced by the drivers in this module.
///
/// # Errors
///
/// A human-readable message when a stream is missing, an algorithm
/// reported an error, or any stream's maximum error exceeds `epsilon`.
pub fn verify_error_bound(
    fleet: &[(DeviceId, Trajectory)],
    results: &mut [FleetResult],
    epsilon: f64,
) -> Result<f64, String> {
    if results.len() != fleet.len() {
        return Err(format!(
            "expected {} results, got {}",
            fleet.len(),
            results.len()
        ));
    }
    results.sort_by_key(|r| r.device);
    let mut worst: f64 = 0.0;
    for ((device, traj), result) in fleet.iter().zip(results.iter()) {
        if *device != result.device {
            return Err(format!(
                "result for device {} where {device} was expected",
                result.device
            ));
        }
        let simplified = result
            .output
            .as_ref()
            .map_err(|e| format!("device {device} failed: {e}"))?;
        worst = worst.max(traj_metrics::max_error(traj, simplified));
    }
    if worst > epsilon + 1e-9 {
        return Err(format!(
            "error bound violated: max error {worst:.3} > ζ = {epsilon}"
        ));
    }
    Ok(worst)
}

/// A parallel-vs-sequential comparison (what `trajsimp fleet` and the
/// pipeline bench print).
#[derive(Debug, Clone, Copy)]
pub struct Speedup {
    /// Sequential wall-clock.
    pub sequential: Duration,
    /// Parallel wall-clock.
    pub parallel: Duration,
}

impl Speedup {
    /// `sequential / parallel` — how many times faster the pipeline ran.
    pub fn factor(&self) -> f64 {
        self.sequential.as_secs_f64() / self.parallel.as_secs_f64().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::Point;

    fn fleet(n: usize, points: usize) -> Vec<(DeviceId, Trajectory)> {
        (0..n)
            .map(|d| {
                let traj = Trajectory::new_unchecked(
                    (0..points)
                        .map(|i| {
                            let t = i as f64;
                            Point::new(t * 10.0, ((t + d as f64) * 0.3).sin() * 40.0, t)
                        })
                        .collect(),
                );
                (d as DeviceId, traj)
            })
            .collect()
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let fleet = fleet(30, 400);
        let algo = FleetAlgorithm::by_name("operb").unwrap();
        let config = PipelineConfig::new(12.0)
            .with_workers(4)
            .with_batch_size(50);
        let mut par = compress_fleet(&fleet, &config, &algo);
        let seq = compress_fleet_sequential(&fleet, 12.0, &algo);
        par.results.sort_by_key(|r| r.device);
        assert_eq!(par.results.len(), seq.results.len());
        for (p, s) in par.results.iter().zip(&seq.results) {
            assert_eq!(p.device, s.device);
            assert_eq!(
                p.output.as_ref().unwrap(),
                s.output.as_ref().unwrap(),
                "device {}",
                p.device
            );
        }
        assert_eq!(par.report.total_points, seq.report.total_points);
    }

    #[test]
    fn speedup_factor() {
        let s = Speedup {
            sequential: Duration::from_millis(900),
            parallel: Duration::from_millis(300),
        };
        assert!((s.factor() - 3.0).abs() < 1e-9);
    }
}
