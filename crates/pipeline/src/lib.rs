//! # traj-pipeline
//!
//! A parallel **fleet-compression pipeline** for the `trajsimp`
//! workspace: a worker-pool executor that drives any error-bounded
//! simplifier (OPERB, OPERB-A and every baseline) over thousands of
//! concurrent trajectory streams — the vehicle-to-cloud ingest scenario
//! that motivates the OPERB paper's introduction, scaled past one
//! trajectory at a time.
//!
//! Three layers:
//!
//! * [`FleetAlgorithm`] — the algorithm registry.  Online algorithms plug
//!   in through [`traj_model::StreamingFactory`] (one simplifier instance
//!   per stream, O(1) state); batch algorithms through the unified
//!   [`traj_model::Simplifier`] trait (buffer per stream, simplify on
//!   close).
//! * [`FleetPipeline`] — the executor: sticky hash routing (every device's
//!   points reach the same worker, in order), bounded per-worker queues
//!   (backpressure instead of unbounded buffering) and a batching front
//!   end that amortizes channel traffic over point chunks.
//! * [`compress_fleet`] / [`compress_fleet_sequential`] — high-level
//!   drivers used by `trajsimp fleet`, the throughput bench and the stress
//!   tests; the sequential variant is the reference a speedup is measured
//!   against.
//!
//! ## Example
//!
//! ```
//! use traj_model::Trajectory;
//! use traj_pipeline::{FleetAlgorithm, FleetPipeline, PipelineConfig};
//!
//! // Two devices streaming positions concurrently.
//! let a = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.1), (20.0, 0.3), (30.0, 8.0)]);
//! let b = Trajectory::from_xy(&[(0.0, 5.0), (10.0, 5.2), (20.0, 4.9), (30.0, 5.1)]);
//!
//! let config = PipelineConfig::new(2.0).with_workers(2).with_batch_size(2);
//! let algorithm = FleetAlgorithm::by_name("operb").unwrap();
//! let mut pipeline = FleetPipeline::spawn(&config, &algorithm);
//!
//! // Interleaved ingest: chunks of both streams arrive in any order.
//! pipeline.push_points(1, a.points());
//! pipeline.push_points(2, b.points());
//! pipeline.close(1);
//! pipeline.close(2);
//!
//! let (results, report) = pipeline.finish();
//! assert_eq!(results.len(), 2);
//! assert_eq!(report.total_points, 8);
//! for result in &results {
//!     let simplified = result.output.as_ref().unwrap();
//!     assert!(simplified.num_segments() >= 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod executor;
pub mod fleet;

pub use algorithm::FleetAlgorithm;
pub use config::PipelineConfig;
pub use executor::{DeviceId, FleetPipeline, FleetResult, PipelineReport};
pub use fleet::{
    compress_fleet, compress_fleet_sequential, compress_fleet_with_sink, FleetRun, ResultSink,
    Speedup,
};
