//! The algorithm registry: every simplifier in the workspace behind one
//! pipeline-ready handle.
//!
//! The executor itself is algorithm-agnostic — it only needs either a
//! [`StreamingFactory`] (one fresh simplifier per device stream; the
//! one-pass algorithms) or a shared [`Simplifier`] (batch algorithms,
//! driven once per closed stream).  [`FleetAlgorithm`] is that either-or,
//! and [`FleetAlgorithm::by_name`] resolves every algorithm the workspace
//! implements.

use std::sync::Arc;

use operb::{Operb, OperbA};
use traj_baselines::{
    Bqs, DeadReckoning, DeltaCodec, DouglasPeucker, Fbqs, OpeningWindow, TdTr, UniformSampling,
};
use traj_model::{Simplifier, StreamingFactory};

/// An algorithm as consumed by the fleet pipeline.
#[derive(Clone)]
pub enum FleetAlgorithm {
    /// A one-pass / online algorithm: each device stream gets a fresh
    /// simplifier from the factory and points are fed as they arrive —
    /// O(stream state) memory per device.
    Streaming {
        /// Display name (e.g. `"OPERB"`).
        name: &'static str,
        /// Per-stream simplifier factory.
        factory: StreamingFactory,
    },
    /// A batch algorithm: the worker buffers each device's points and runs
    /// the simplifier when the stream closes — O(trajectory) memory per
    /// device, but any [`Simplifier`] works.
    Batch(Arc<dyn Simplifier>),
}

impl std::fmt::Debug for FleetAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetAlgorithm")
            .field("name", &self.name())
            .field(
                "streaming",
                &matches!(self, FleetAlgorithm::Streaming { .. }),
            )
            .finish()
    }
}

impl FleetAlgorithm {
    /// Display name of the wrapped algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            FleetAlgorithm::Streaming { name, .. } => name,
            FleetAlgorithm::Batch(s) => s.name(),
        }
    }

    /// `true` when the algorithm runs one-pass over each stream (constant
    /// memory per device).
    pub fn is_streaming(&self) -> bool {
        matches!(self, FleetAlgorithm::Streaming { .. })
    }

    /// Wraps a streaming factory.
    pub fn streaming(name: &'static str, factory: StreamingFactory) -> Self {
        FleetAlgorithm::Streaming { name, factory }
    }

    /// Wraps a shared batch simplifier.
    pub fn batch(simplifier: Arc<dyn Simplifier>) -> Self {
        FleetAlgorithm::Batch(simplifier)
    }

    /// Resolves an algorithm by name (case-insensitive).  Online
    /// algorithms are returned in streaming form; batch-only algorithms
    /// (DP, TD-TR, the sampling baselines, the lossless delta codec) in
    /// batch form.
    ///
    /// Accepted names: `operb`, `raw-operb`, `operb-a`, `raw-operb-a`,
    /// `opw`, `bqs`, `fbqs`, `dp` (alias `douglas-peucker`), `td-tr`
    /// (alias `tdtr`), `uniform`, `dead-reckoning`, `delta`.
    pub fn by_name(name: &str) -> Option<FleetAlgorithm> {
        Some(match name.to_ascii_lowercase().as_str() {
            "operb" => Self::streaming("OPERB", Operb::new().streaming_factory()),
            "raw-operb" => Self::streaming("Raw-OPERB", Operb::raw().streaming_factory()),
            "operb-a" => Self::streaming("OPERB-A", OperbA::new().streaming_factory()),
            "raw-operb-a" => Self::streaming("Raw-OPERB-A", OperbA::raw().streaming_factory()),
            "opw" => Self::streaming("OPW", Arc::new(|eps| Box::new(OpeningWindow::stream(eps)))),
            "bqs" => Self::streaming("BQS", Arc::new(|eps| Box::new(Bqs::stream(eps)))),
            "fbqs" => Self::streaming("FBQS", Arc::new(|eps| Box::new(Fbqs::stream(eps)))),
            "dp" | "douglas-peucker" => Self::batch(Arc::new(DouglasPeucker::new())),
            "td-tr" | "tdtr" => Self::batch(Arc::new(TdTr::new())),
            "uniform" | "uniform-sampling" => Self::batch(Arc::new(UniformSampling::default())),
            "dead-reckoning" => Self::batch(Arc::new(DeadReckoning::new())),
            "delta" => Self::batch(Arc::new(DeltaCodec::default())),
            _ => return None,
        })
    }

    /// Every name [`FleetAlgorithm::by_name`] resolves (canonical forms).
    pub fn all_names() -> &'static [&'static str] {
        &[
            "operb",
            "raw-operb",
            "operb-a",
            "raw-operb-a",
            "opw",
            "bqs",
            "fbqs",
            "dp",
            "td-tr",
            "uniform",
            "dead-reckoning",
            "delta",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_listed_name() {
        for name in FleetAlgorithm::all_names() {
            let algo =
                FleetAlgorithm::by_name(name).unwrap_or_else(|| panic!("{name} should resolve"));
            assert!(!algo.name().is_empty());
        }
        assert!(FleetAlgorithm::by_name("no-such-algorithm").is_none());
    }

    #[test]
    fn online_algorithms_are_streaming() {
        for name in ["operb", "operb-a", "opw", "bqs", "fbqs"] {
            assert!(
                FleetAlgorithm::by_name(name).unwrap().is_streaming(),
                "{name}"
            );
        }
        for name in ["dp", "td-tr", "uniform", "dead-reckoning", "delta"] {
            assert!(
                !FleetAlgorithm::by_name(name).unwrap().is_streaming(),
                "{name}"
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(
            FleetAlgorithm::by_name("OPERB-A").unwrap().name(),
            "OPERB-A"
        );
        assert_eq!(FleetAlgorithm::by_name("Dp").unwrap().name(), "DP");
    }
}
