//! The worker-pool executor: bounded per-worker queues, deterministic
//! per-device routing, and a batching front end.
//!
//! ```text
//!             ┌── batching layer (per-device point buffers) ──┐
//!  submit ──▶ │ route(device) = hash(device) mod workers      │
//!             └──────────────┬────────────────┬───────────────┘
//!                   bounded  │        bounded │      … one queue per worker
//!                            ▼                ▼
//!                      ┌──────────┐     ┌──────────┐
//!                      │ worker 0 │     │ worker 1 │   each worker owns the
//!                      │ streams: │     │ streams: │   state of the devices
//!                      │  d0, d2… │     │  d1, d3… │   routed to it
//!                      └────┬─────┘     └────┬─────┘
//!                           └───────┬────────┘
//!                                   ▼  unbounded results channel
//!                              collector / caller
//! ```
//!
//! Routing is sticky: all chunks of one device go to the same worker, so
//! each stream's points are processed in order with no cross-thread
//! synchronization on the simplifier state.  Queues are bounded
//! ([`crate::PipelineConfig::queue_capacity`]); when a worker falls behind,
//! `submit` blocks — backpressure instead of unbounded buffering.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::time::{Duration, Instant};

use traj_geo::Point;
use traj_model::{
    BoxedStreamingSimplifier, SimplifiedSegment, SimplifiedTrajectory, Trajectory, TrajectoryError,
};

use crate::algorithm::FleetAlgorithm;
use crate::config::PipelineConfig;

/// Identifies one trajectory stream (one vehicle / user / sensor).
pub type DeviceId = u64;

/// One chunk of work routed to a worker.
enum Job {
    /// Points of one device, in trajectory order.  `close` marks the end
    /// of the stream: the simplifier is flushed and the result emitted.
    Chunk {
        device: DeviceId,
        points: Vec<Point>,
        close: bool,
    },
}

/// The compressed output of one closed device stream.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// The stream this result belongs to.
    pub device: DeviceId,
    /// The piecewise line representation produced by the algorithm, or the
    /// error the algorithm reported (e.g. an invalid error bound).
    pub output: Result<SimplifiedTrajectory, TrajectoryError>,
    /// Number of points the stream contained.
    pub points: usize,
}

/// Throughput accounting returned by [`FleetPipeline::finish`].
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Number of worker threads that ran.
    pub workers: usize,
    /// Total points pushed through the pipeline.
    pub total_points: usize,
    /// Total streams closed.
    pub total_streams: usize,
    /// Wall-clock time from spawn to the last worker joining.
    pub elapsed: Duration,
    /// Per-worker busy time (time spent inside simplification, not
    /// blocked on the queue) — the imbalance diagnostic.
    pub worker_busy: Vec<Duration>,
}

impl PipelineReport {
    /// Aggregate throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        self.total_points as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Per-stream state owned by a worker.
enum StreamState {
    /// Online algorithm: live simplifier plus the segments it has emitted.
    Streaming {
        simplifier: BoxedStreamingSimplifier,
        segments: Vec<SimplifiedSegment>,
        points: usize,
    },
    /// Batch algorithm: buffer the points until the stream closes.
    Buffering { points: Vec<Point> },
}

struct WorkerOutcome {
    busy: Duration,
    points: usize,
    streams: usize,
}

/// The parallel fleet-compression pipeline.
///
/// Create one with [`FleetPipeline::spawn`], feed it points with
/// [`FleetPipeline::push`] / [`FleetPipeline::push_points`] (ending each
/// stream with [`FleetPipeline::close`]) or whole trajectories with
/// [`FleetPipeline::submit`], then call [`FleetPipeline::finish`] to join
/// the workers and collect every result.  Results of already-closed
/// streams can be drained early with [`FleetPipeline::drain_ready`] to
/// bound memory on long runs.
pub struct FleetPipeline {
    senders: Vec<SyncSender<Job>>,
    results: Receiver<FleetResult>,
    handles: Vec<std::thread::JoinHandle<WorkerOutcome>>,
    /// Batching layer: per-device buffers not yet dispatched.
    pending: HashMap<DeviceId, Vec<Point>>,
    batch_size: usize,
    started: Instant,
}

impl FleetPipeline {
    /// Spawns the worker pool.
    pub fn spawn(config: &PipelineConfig, algorithm: &FleetAlgorithm) -> Self {
        let workers = config.workers.max(1);
        let (result_tx, results) = std::sync::mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker_index in 0..workers {
            let (tx, rx) = sync_channel::<Job>(config.queue_capacity.max(1));
            let algorithm = algorithm.clone();
            let result_tx: Sender<FleetResult> = result_tx.clone();
            let epsilon = config.epsilon;
            let metrics = WorkerMetrics::register(worker_index);
            let handle = std::thread::Builder::new()
                .name(format!("fleet-worker-{worker_index}"))
                .spawn(move || worker_loop(rx, result_tx, algorithm, epsilon, &metrics))
                .expect("spawn pipeline worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            results,
            handles,
            pending: HashMap::new(),
            batch_size: config.batch_size.max(1),
            started: Instant::now(),
        }
    }

    /// The worker a device's stream is routed to.  Sticky (same device →
    /// same worker) and mixing (a multiply-shift hash, so dense device id
    /// ranges still spread across workers).
    fn route(&self, device: DeviceId) -> usize {
        let mixed = device.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) % self.senders.len() as u64) as usize
    }

    fn dispatch(&mut self, device: DeviceId, points: Vec<Point>, close: bool) {
        let worker = self.route(device);
        self.senders[worker]
            .send(Job::Chunk {
                device,
                points,
                close,
            })
            .expect("pipeline worker exited early");
    }

    /// Feeds one point of `device`'s stream.  Points are buffered per
    /// device and dispatched in chunks of
    /// [`crate::PipelineConfig::batch_size`]; blocks when the target
    /// worker's queue is full (backpressure).
    pub fn push(&mut self, device: DeviceId, point: Point) {
        let buf = self.pending.entry(device).or_default();
        buf.push(point);
        if buf.len() >= self.batch_size {
            let points = std::mem::take(self.pending.get_mut(&device).expect("present"));
            self.dispatch(device, points, false);
        }
    }

    /// Feeds many points of `device`'s stream at once (bulk fast path of
    /// [`FleetPipeline::push`]: whole chunks are copied, not pushed
    /// point-by-point).
    pub fn push_points(&mut self, device: DeviceId, mut points: &[Point]) {
        loop {
            let buffered = self.pending.get(&device).map_or(0, Vec::len);
            let need = self.batch_size - buffered;
            if points.len() < need {
                if !points.is_empty() {
                    self.pending
                        .entry(device)
                        .or_default()
                        .extend_from_slice(points);
                }
                return;
            }
            let (chunk, rest) = points.split_at(need);
            // Take the buffer but keep the (now empty) entry: `finish()`
            // closes exactly the streams present in `pending`, so a stream
            // whose points land on a chunk boundary must stay registered.
            let mut batch = std::mem::take(self.pending.entry(device).or_default());
            batch.extend_from_slice(chunk);
            self.dispatch(device, batch, false);
            points = rest;
        }
    }

    /// Ends `device`'s stream: flushes its buffer, finishes the simplifier
    /// and (asynchronously) emits a [`FleetResult`].
    pub fn close(&mut self, device: DeviceId) {
        let points = self.pending.remove(&device).unwrap_or_default();
        self.dispatch(device, points, true);
    }

    /// Convenience: feeds a whole trajectory as one stream and closes it.
    pub fn submit(&mut self, device: DeviceId, trajectory: &Trajectory) {
        self.push_points(device, trajectory.points());
        self.close(device);
    }

    /// Results of streams that have already finished, without blocking.
    pub fn drain_ready(&mut self) -> Vec<FleetResult> {
        self.results.try_iter().collect()
    }

    /// Closes every still-open stream, joins the workers and returns all
    /// remaining results plus the throughput report.
    pub fn finish(mut self) -> (Vec<FleetResult>, PipelineReport) {
        let open: Vec<DeviceId> = self.pending.keys().copied().collect();
        for device in open {
            self.close(device);
        }
        // Dropping the senders ends each worker's receive loop.
        self.senders.clear();
        let mut report = PipelineReport {
            workers: self.handles.len(),
            ..PipelineReport::default()
        };
        for handle in self.handles.drain(..) {
            let outcome = handle.join().expect("pipeline worker panicked");
            // Totals are worker-derived: what was actually processed, not
            // what the producer believes it submitted.
            report.total_points += outcome.points;
            report.total_streams += outcome.streams;
            report.worker_busy.push(outcome.busy);
        }
        report.elapsed = self.started.elapsed();
        let results = self.results.iter().collect();
        (results, report)
    }
}

fn new_stream_state(algorithm: &FleetAlgorithm, epsilon: f64) -> StreamState {
    match algorithm {
        FleetAlgorithm::Streaming { factory, .. } => StreamState::Streaming {
            simplifier: factory(epsilon),
            segments: Vec::new(),
            points: 0,
        },
        FleetAlgorithm::Batch(_) => StreamState::Buffering { points: Vec::new() },
    }
}

fn finalize(
    state: StreamState,
    algorithm: &FleetAlgorithm,
    epsilon: f64,
    device: DeviceId,
) -> FleetResult {
    match state {
        StreamState::Streaming {
            mut simplifier,
            mut segments,
            points,
        } => {
            simplifier.finish(&mut segments);
            FleetResult {
                device,
                output: Ok(SimplifiedTrajectory::new(segments, points)),
                points,
            }
        }
        StreamState::Buffering { points } => {
            let n = points.len();
            let simplifier = match algorithm {
                FleetAlgorithm::Batch(s) => s,
                FleetAlgorithm::Streaming { .. } => unreachable!("buffering implies batch"),
            };
            let output = if n == 0 {
                Ok(SimplifiedTrajectory::new(Vec::new(), 0))
            } else {
                // Per-device streams are pushed in order, so the buffer is a
                // valid trajectory without re-validation.
                simplifier.simplify(&Trajectory::new_unchecked(points), epsilon)
            };
            FleetResult {
                device,
                output,
                points: n,
            }
        }
    }
}

/// Ingest counters one worker bumps as it compresses: aggregate series
/// (fleet totals) plus the same counts labelled by worker, all in the
/// process-global registry so a server scraping `/metrics` sees every
/// pipeline this process ever ran.
struct WorkerMetrics {
    points: traj_obs::Counter,
    streams: traj_obs::Counter,
    chunks: traj_obs::Counter,
    worker_points: traj_obs::Counter,
    worker_streams: traj_obs::Counter,
}

impl WorkerMetrics {
    fn register(worker_index: usize) -> Self {
        let registry = traj_obs::Registry::global();
        let worker = worker_index.to_string();
        WorkerMetrics {
            points: registry.counter(
                "pipeline_points_total",
                "Points compressed through the fleet pipeline.",
                &[],
            ),
            streams: registry.counter(
                "pipeline_streams_total",
                "Trajectory streams finished by the fleet pipeline.",
                &[],
            ),
            chunks: registry.counter(
                "pipeline_chunks_total",
                "Point chunks dispatched to pipeline workers.",
                &[],
            ),
            worker_points: registry.counter(
                "pipeline_worker_points_total",
                "Points compressed, by pipeline worker.",
                &[("worker", &worker)],
            ),
            worker_streams: registry.counter(
                "pipeline_worker_streams_total",
                "Streams finished, by pipeline worker.",
                &[("worker", &worker)],
            ),
        }
    }
}

/// Registers the pipeline's aggregate ingest counters (at zero if no
/// pipeline ran yet), so a metrics scrape always sees the series.
pub fn ensure_metrics_registered() {
    let registry = traj_obs::Registry::global();
    registry.counter(
        "pipeline_points_total",
        "Points compressed through the fleet pipeline.",
        &[],
    );
    registry.counter(
        "pipeline_streams_total",
        "Trajectory streams finished by the fleet pipeline.",
        &[],
    );
    registry.counter(
        "pipeline_chunks_total",
        "Point chunks dispatched to pipeline workers.",
        &[],
    );
}

fn worker_loop(
    rx: Receiver<Job>,
    results: Sender<FleetResult>,
    algorithm: FleetAlgorithm,
    epsilon: f64,
    metrics: &WorkerMetrics,
) -> WorkerOutcome {
    let mut streams: HashMap<DeviceId, StreamState> = HashMap::new();
    let mut outcome = WorkerOutcome {
        busy: Duration::ZERO,
        points: 0,
        streams: 0,
    };
    for job in rx.iter() {
        let Job::Chunk {
            device,
            points,
            close,
        } = job;
        let work_started = Instant::now();
        outcome.points += points.len();
        metrics.chunks.inc();
        metrics.points.add(points.len() as u64);
        metrics.worker_points.add(points.len() as u64);
        let state = streams
            .entry(device)
            .or_insert_with(|| new_stream_state(&algorithm, epsilon));
        match state {
            StreamState::Streaming {
                simplifier,
                segments,
                points: seen,
            } => {
                for p in points {
                    simplifier.push(p, segments);
                }
                *seen = simplifier.points_seen();
            }
            StreamState::Buffering { points: buffer } => buffer.extend(points),
        }
        if close {
            outcome.streams += 1;
            metrics.streams.inc();
            metrics.worker_streams.inc();
            let state = streams.remove(&device).expect("state just touched");
            let result = finalize(state, &algorithm, epsilon, device);
            // A disconnected collector is not an error: the caller may have
            // dropped the pipeline without finishing.
            let _ = results.send(result);
        }
        outcome.busy += work_started.elapsed();
    }
    // Channel closed with streams still open (finish() closes everything
    // first, so this only happens when the producer is dropped mid-stream):
    // flush what we have so no data is silently lost.
    for (device, state) in streams.drain() {
        outcome.streams += 1;
        metrics.streams.inc();
        metrics.worker_streams.inc();
        let _ = results.send(finalize(state, &algorithm, epsilon, device));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::BatchSimplifier;

    fn wave(n: usize, seed: u64) -> Trajectory {
        Trajectory::new_unchecked(
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    Point::new(
                        t * 8.0 + seed as f64 * 1e4,
                        (t * 0.21 + seed as f64).sin() * 70.0,
                        t,
                    )
                })
                .collect(),
        )
    }

    fn pipeline_config(workers: usize) -> PipelineConfig {
        PipelineConfig::new(15.0)
            .with_workers(workers)
            .with_batch_size(64)
            .with_queue_capacity(8)
    }

    #[test]
    fn routing_is_sticky_and_in_range() {
        let algo = FleetAlgorithm::by_name("operb").unwrap();
        let pipe = FleetPipeline::spawn(&pipeline_config(4), &algo);
        for device in 0..1000u64 {
            let w = pipe.route(device);
            assert!(w < 4);
            assert_eq!(w, pipe.route(device));
        }
        // Dense ids must not all land on one worker.
        let mut seen = std::collections::HashSet::new();
        for device in 0..64u64 {
            seen.insert(pipe.route(device));
        }
        assert!(seen.len() >= 3, "only {} workers used", seen.len());
        let (_, _) = pipe.finish();
    }

    #[test]
    fn parallel_output_matches_batch_per_stream() {
        // Whatever the worker count or chunk size, each stream's output
        // must equal the single-threaded batch run of the same algorithm.
        let trajectories: Vec<(DeviceId, Trajectory)> = (0..20)
            .map(|i| (i as DeviceId, wave(500 + i * 37, i as u64)))
            .collect();
        for workers in [1, 4] {
            let algo = FleetAlgorithm::by_name("operb").unwrap();
            let mut pipe = FleetPipeline::spawn(&pipeline_config(workers), &algo);
            for (device, traj) in &trajectories {
                pipe.submit(*device, traj);
            }
            let (mut results, report) = pipe.finish();
            assert_eq!(results.len(), trajectories.len());
            assert_eq!(report.total_streams, trajectories.len());
            results.sort_by_key(|r| r.device);
            for ((device, traj), result) in trajectories.iter().zip(&results) {
                assert_eq!(*device, result.device);
                let expected = operb::Operb::new().simplify(traj, 15.0).unwrap();
                let got = result.output.as_ref().expect("simplification succeeds");
                assert_eq!(got, &expected, "device {device} with {workers} workers");
            }
        }
    }

    #[test]
    fn interleaved_streams_keep_per_device_order() {
        // Feed two devices alternately, one point at a time; per-device
        // output must still match the contiguous run.
        let a = wave(400, 1);
        let b = wave(400, 2);
        let algo = FleetAlgorithm::by_name("operb-a").unwrap();
        let mut pipe = FleetPipeline::spawn(&pipeline_config(2), &algo);
        for i in 0..400 {
            pipe.push(1, a.points()[i]);
            pipe.push(2, b.points()[i]);
        }
        pipe.close(1);
        pipe.close(2);
        let (mut results, _) = pipe.finish();
        results.sort_by_key(|r| r.device);
        let expect_a = operb::OperbA::new().simplify(&a, 15.0).unwrap();
        let expect_b = operb::OperbA::new().simplify(&b, 15.0).unwrap();
        assert_eq!(results[0].output.as_ref().unwrap(), &expect_a);
        assert_eq!(results[1].output.as_ref().unwrap(), &expect_b);
    }

    #[test]
    fn batch_algorithms_run_on_close() {
        let traj = wave(300, 3);
        let algo = FleetAlgorithm::by_name("dp").unwrap();
        let mut pipe = FleetPipeline::spawn(&pipeline_config(2), &algo);
        pipe.submit(9, &traj);
        let (results, _) = pipe.finish();
        assert_eq!(results.len(), 1);
        let expected = traj_baselines::DouglasPeucker::new()
            .simplify(&traj, 15.0)
            .unwrap();
        assert_eq!(results[0].output.as_ref().unwrap(), &expected);
    }

    #[test]
    fn empty_stream_yields_empty_result() {
        for name in ["operb", "dp"] {
            let algo = FleetAlgorithm::by_name(name).unwrap();
            let mut pipe = FleetPipeline::spawn(&pipeline_config(1), &algo);
            pipe.close(5);
            let (results, _) = pipe.finish();
            assert_eq!(results.len(), 1, "{name}");
            assert_eq!(results[0].points, 0);
            let out = results[0].output.as_ref().unwrap();
            assert_eq!(out.num_segments(), 0, "{name}");
        }
    }

    #[test]
    fn finish_closes_open_streams() {
        let traj = wave(100, 4);
        let algo = FleetAlgorithm::by_name("fbqs").unwrap();
        let mut pipe = FleetPipeline::spawn(&pipeline_config(2), &algo);
        pipe.push_points(7, traj.points());
        // No explicit close: finish() must flush it.
        let (results, report) = pipe.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].points, 100);
        assert_eq!(report.total_points, 100);
        assert!(report.points_per_sec() > 0.0);
    }

    #[test]
    fn chunk_boundary_stream_is_closed_by_finish() {
        // Regression: a stream whose point count is an exact multiple of
        // batch_size used to fall out of the batching layer's registry, so
        // finish() never closed it and total_streams undercounted.
        let traj = wave(128, 6); // batch_size 64 → exactly two full chunks
        let algo = FleetAlgorithm::by_name("operb").unwrap();
        let mut pipe = FleetPipeline::spawn(&pipeline_config(2), &algo);
        pipe.push_points(3, traj.points());
        let (results, report) = pipe.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(report.total_streams, 1);
        assert_eq!(report.total_points, 128);
        let expected = operb::Operb::new().simplify(&traj, 15.0).unwrap();
        assert_eq!(results[0].output.as_ref().unwrap(), &expected);
    }

    #[test]
    fn producer_drop_mid_stream_flushes_dispatched_points() {
        // When the producer side goes away without closing its streams
        // (process shutdown, dropped pipeline), the workers' receive loops
        // end and every still-open stream must be finalized and emitted —
        // no dispatched point may be silently lost.  The batching layer's
        // *undispatched* buffers are the producer's own state and die with
        // it, which is why this test pushes exact chunk multiples for the
        // streams it asserts on.
        let traj = wave(256, 8); // batch_size 64 → exactly four full chunks
        let partial = wave(100, 9); // 64 dispatched + 36 still in the buffer
        let algo = FleetAlgorithm::by_name("operb").unwrap();
        let mut pipe = FleetPipeline::spawn(&pipeline_config(2), &algo);
        pipe.push_points(1, traj.points());
        pipe.push_points(2, traj.points());
        pipe.push_points(3, partial.points());
        // Simulate the producer dropping mid-stream: tear the pipeline
        // apart without close()/finish().  Dropping the senders ends the
        // worker loops; the results channel stays alive so the flush is
        // observable.
        let FleetPipeline {
            senders,
            results,
            handles,
            pending,
            ..
        } = pipe;
        assert_eq!(pending.get(&3).map(Vec::len), Some(36));
        drop(senders);
        let mut total_worker_points = 0;
        for handle in handles {
            total_worker_points += handle.join().expect("worker must not panic").points;
        }
        assert_eq!(total_worker_points, 256 + 256 + 64);
        let mut flushed: Vec<FleetResult> = results.iter().collect();
        flushed.sort_by_key(|r| r.device);
        assert_eq!(flushed.len(), 3, "every open stream must be flushed");
        for r in &flushed[..2] {
            assert_eq!(r.points, 256, "device {}", r.device);
            let simplified = r.output.as_ref().unwrap();
            assert_eq!(simplified.original_len(), 256);
            assert_eq!(simplified.validate(), Ok(()));
        }
        assert_eq!(flushed[2].points, 64);
    }

    #[test]
    fn drain_ready_returns_completed_streams() {
        let algo = FleetAlgorithm::by_name("operb").unwrap();
        let mut pipe = FleetPipeline::spawn(&pipeline_config(2), &algo);
        let traj = wave(200, 5);
        pipe.submit(1, &traj);
        // The result arrives asynchronously; poll until it shows up.
        let mut drained = Vec::new();
        for _ in 0..500 {
            drained.extend(pipe.drain_ready());
            if !drained.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(drained.len(), 1);
        let (rest, _) = pipe.finish();
        assert!(rest.is_empty());
    }
}
