//! Pipeline tuning knobs: worker count, queue capacity, batch size and the
//! error bound shared by every stream.

/// Configuration of a [`crate::FleetPipeline`].
///
/// The defaults are sensible for throughput work: one worker per available
/// CPU, point chunks of 256 (large enough to amortize dispatch, small
/// enough to keep per-stream latency low) and per-worker queues of 64
/// chunks (bounded, so a slow worker exerts backpressure on the producer
/// instead of buffering unboundedly).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Number of worker threads. Clamped to at least 1.
    pub workers: usize,
    /// Capacity of each worker's job queue, in chunks. When a queue is
    /// full, submission blocks — this is the pipeline's backpressure.
    pub queue_capacity: usize,
    /// Number of points per dispatched chunk. Submitted points are
    /// buffered per device until a full chunk accumulates (the batching
    /// layer that amortizes channel traffic over many points).
    pub batch_size: usize,
    /// The error bound `ζ` handed to every simplifier instance, in the
    /// same length unit as the point coordinates (meters by convention).
    pub epsilon: f64,
}

impl PipelineConfig {
    /// A configuration with the given error bound and default parallelism.
    pub fn new(epsilon: f64) -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 64,
            batch_size: 256,
            epsilon,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the per-worker queue capacity (in chunks).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the chunk size (in points).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

impl Default for PipelineConfig {
    /// Defaults to the paper's most common error bound, ζ = 30 m.
    fn default() -> Self {
        Self::new(30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PipelineConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_capacity >= 1);
        assert!(c.batch_size >= 1);
        assert_eq!(c.epsilon, 30.0);
    }

    #[test]
    fn builders_clamp_to_one() {
        let c = PipelineConfig::new(10.0)
            .with_workers(0)
            .with_queue_capacity(0)
            .with_batch_size(0);
        assert_eq!((c.workers, c.queue_capacity, c.batch_size), (1, 1, 1));
    }
}
