//! Trajectories: time-ordered sequences of data points (paper §3.1).

use crate::error::TrajectoryError;
use traj_geo::{DirectedSegment, Point};

/// A trajectory `...T [P0, …, Pn]`: a sequence of data points in strictly
/// increasing time order.
///
/// Invariants (checked by [`Trajectory::new`], assumed by the algorithms):
///
/// * at least one point;
/// * all coordinates and timestamps finite;
/// * timestamps strictly increasing.
///
/// [`Trajectory::new_unchecked`] skips validation for workload generators
/// that construct points in order by design.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory after validating the invariants above.
    pub fn new(points: Vec<Point>) -> Result<Self, TrajectoryError> {
        if points.is_empty() {
            return Err(TrajectoryError::Empty);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(TrajectoryError::NonFinitePoint { index: i });
            }
            if i > 0 && p.t <= points[i - 1].t {
                return Err(TrajectoryError::NonMonotonicTime { index: i });
            }
        }
        Ok(Self { points })
    }

    /// Creates a trajectory without validating the invariants.
    ///
    /// Intended for generators and tests that construct points in order; the
    /// invariants are checked in debug builds.
    pub fn new_unchecked(points: Vec<Point>) -> Self {
        debug_assert!(!points.is_empty(), "trajectory must not be empty");
        debug_assert!(
            points.windows(2).all(|w| w[0].t < w[1].t),
            "trajectory timestamps must be strictly increasing"
        );
        Self { points }
    }

    /// Convenience constructor from `(x, y, t)` tuples (validated).
    pub fn from_xyt(coords: &[(f64, f64, f64)]) -> Result<Self, TrajectoryError> {
        Self::new(
            coords
                .iter()
                .map(|&(x, y, t)| Point::new(x, y, t))
                .collect(),
        )
    }

    /// Convenience constructor from `(x, y)` pairs, assigning timestamps
    /// `0, 1, 2, …` seconds.  Handy in tests and examples.
    pub fn from_xy(coords: &[(f64, f64)]) -> Self {
        Self::new_unchecked(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, i as f64))
                .collect(),
        )
    }

    /// The data points, in order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of data points (`n + 1` in the paper's `[P0, …, Pn]`).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the trajectory contains no points.  Always `false` for a
    /// validated trajectory, but kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point at index `i`.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// First point `P0`.
    #[inline]
    pub fn first(&self) -> Point {
        self.points[0]
    }

    /// Last point `Pn`.
    #[inline]
    pub fn last(&self) -> Point {
        *self.points.last().expect("trajectory is never empty")
    }

    /// Iterator over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Total travelled (polyline) length in the planar unit, i.e. the sum of
    /// consecutive point distances.
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Duration covered by the trajectory in seconds (0 for a single point).
    pub fn duration(&self) -> f64 {
        if self.points.len() < 2 {
            0.0
        } else {
            self.last().t - self.first().t
        }
    }

    /// Mean sampling interval in seconds (0 for fewer than two points).
    pub fn mean_sampling_interval(&self) -> f64 {
        if self.points.len() < 2 {
            0.0
        } else {
            self.duration() / (self.points.len() - 1) as f64
        }
    }

    /// The sub-trajectory over the inclusive index range, cloned.
    pub fn slice(&self, first: usize, last: usize) -> Trajectory {
        assert!(first <= last && last < self.points.len());
        Trajectory {
            points: self.points[first..=last].to_vec(),
        }
    }

    /// The directed segment from point `i` to point `j`.
    #[inline]
    pub fn segment(&self, i: usize, j: usize) -> DirectedSegment {
        DirectedSegment::new(self.points[i], self.points[j])
    }

    /// Consumes the trajectory and returns the underlying points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_monotonic_time() {
        let err = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonMonotonicTime { index: 1 });
        let err = Trajectory::from_xyt(&[(0.0, 0.0, 5.0), (1.0, 0.0, 4.0)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonMonotonicTime { index: 1 });
        assert!(Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]).is_ok());
    }

    #[test]
    fn new_rejects_empty_and_non_finite() {
        assert_eq!(Trajectory::new(vec![]).unwrap_err(), TrajectoryError::Empty);
        let err = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(f64::NAN, 0.0, 1.0),
        ])
        .unwrap_err();
        assert_eq!(err, TrajectoryError::NonFinitePoint { index: 1 });
    }

    #[test]
    fn from_xy_assigns_increasing_time() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.point(1).t, 1.0);
        assert_eq!(t.first(), Point::new(0.0, 0.0, 0.0));
        assert_eq!(t.last(), Point::new(2.0, 0.0, 2.0));
    }

    #[test]
    fn path_length_and_duration() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (3.0, 4.0), (3.0, 4.0 + 5.0)]);
        assert!((t.path_length() - 10.0).abs() < 1e-12);
        assert_eq!(t.duration(), 2.0);
        assert_eq!(t.mean_sampling_interval(), 1.0);

        let single = Trajectory::from_xy(&[(1.0, 1.0)]);
        assert_eq!(single.path_length(), 0.0);
        assert_eq!(single.duration(), 0.0);
        assert_eq!(single.mean_sampling_interval(), 0.0);
    }

    #[test]
    fn slice_and_segment() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let s = t.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first().x, 1.0);
        assert_eq!(s.last().x, 2.0);
        let seg = t.segment(0, 3);
        assert_eq!(seg.start.x, 0.0);
        assert_eq!(seg.end.x, 3.0);
        assert_eq!(seg.length(), 3.0);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        let _ = t.slice(0, 2);
    }

    #[test]
    fn iteration() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        let pts = t.clone().into_points();
        assert_eq!(pts.len(), 2);
    }
}
