//! Error types for trajectory construction and simplification.

use std::fmt;

/// Errors raised when constructing or validating a [`crate::Trajectory`], or
/// when a simplifier is given invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryError {
    /// A trajectory needs at least one data point.
    Empty,
    /// The timestamps are not strictly increasing at the given index
    /// (`P_i.t < P_j.t` must hold for all `i < j`, paper §3.1).
    NonMonotonicTime {
        /// Index of the offending point (the one whose timestamp does not
        /// increase over its predecessor).
        index: usize,
    },
    /// A coordinate or timestamp is NaN or infinite at the given index.
    NonFinitePoint {
        /// Index of the offending point.
        index: usize,
    },
    /// The error bound `ζ` handed to a simplifier must be finite and > 0.
    InvalidErrorBound {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::Empty => write!(f, "trajectory must contain at least one point"),
            TrajectoryError::NonMonotonicTime { index } => write!(
                f,
                "trajectory timestamps must be strictly increasing (violated at point {index})"
            ),
            TrajectoryError::NonFinitePoint { index } => {
                write!(f, "trajectory point {index} has a non-finite coordinate")
            }
            TrajectoryError::InvalidErrorBound { value } => {
                write!(f, "error bound must be finite and positive, got {value}")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TrajectoryError::Empty.to_string().contains("at least one"));
        assert!(TrajectoryError::NonMonotonicTime { index: 3 }
            .to_string()
            .contains("point 3"));
        assert!(TrajectoryError::NonFinitePoint { index: 7 }
            .to_string()
            .contains("point 7"));
        assert!(TrajectoryError::InvalidErrorBound { value: -1.0 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&TrajectoryError::Empty);
    }
}
