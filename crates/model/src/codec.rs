//! Compact binary encoding of piecewise line representations.
//!
//! The storage engine (`traj-store`) keeps simplified trajectories on disk
//! and in memory in this format: coordinates and timestamps are quantized
//! to a configurable resolution (default 1 cm / 1 ms, far below GPS
//! accuracy and the error bounds ζ the algorithms run with) and stored as
//! zig-zag + varint encoded deltas between consecutive shape points, with
//! responsibility index ranges delta-encoded alongside.  A typical OPERB
//! output segment costs a handful of bytes instead of the 56 bytes of its
//! in-memory form.
//!
//! Quantization moves each shape point by at most half a resolution step
//! per axis, so a decoded segment's supporting line is within
//! [`SegmentCodec::spatial_slack`] of the encoded one; consumers that
//! guarantee an error bound ζ on the stored data must account for
//! `ζ + spatial_slack()`.  Encoding is lossy exactly once: re-encoding a
//! decoded representation is bit-identical.
//!
//! ```
//! use traj_geo::DirectedSegment;
//! use traj_model::codec::SegmentCodec;
//! use traj_model::{SimplifiedSegment, SimplifiedTrajectory, Trajectory};
//!
//! let trajectory = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.2), (20.0, 0.1)]);
//! let simplified = SimplifiedTrajectory::new(
//!     vec![SimplifiedSegment::new(
//!         DirectedSegment::new(trajectory.first(), trajectory.last()),
//!         0,
//!         2,
//!     )],
//!     trajectory.len(),
//! );
//!
//! let codec = SegmentCodec::default();
//! let bytes = codec.encode(&simplified).unwrap();
//! let back = codec.decode(&bytes).unwrap();
//! assert_eq!(back.num_segments(), 1);
//! assert_eq!(back.segments()[0].first_index, 0);
//! assert_eq!(back.segments()[0].last_index, 2);
//! // Shape points moved by at most the quantization slack.
//! assert!(back.segments()[0].segment.start.distance(&trajectory.first()) <= codec.spatial_slack());
//! ```

use crate::simplified::{SimplifiedSegment, SimplifiedTrajectory};
use traj_geo::{DirectedSegment, Point};

/// Default spatial quantization step: 1 cm.
pub const DEFAULT_SPATIAL_RESOLUTION: f64 = 0.01;
/// Default temporal quantization step: 1 ms.
pub const DEFAULT_TIME_RESOLUTION: f64 = 0.001;

/// Errors produced when encoding or decoding a segment block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A coordinate or timestamp is too large for the configured
    /// resolution (the quantized value does not fit a 63-bit integer).
    ValueOutOfRange,
    /// The byte stream ended in the middle of a record.
    UnexpectedEof,
    /// A varint exceeded the maximum encodable length.
    VarintOverflow,
    /// A decoded responsibility index is negative or implausibly large
    /// (corrupted input).
    InvalidIndex,
    /// Bytes were left over after the last segment.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::ValueOutOfRange => {
                write!(f, "coordinate out of range for the codec resolution")
            }
            CodecError::UnexpectedEof => write!(f, "unexpected end of encoded block"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::InvalidIndex => write!(f, "corrupt responsibility index"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after the last segment"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maps a signed integer to an unsigned one with small absolute values
/// staying small (protobuf's zig-zag transform).
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` to `buf` as a base-128 varint (7 payload bits per byte).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A read cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Reads a base-128 varint.
pub fn get_varint(buf: &mut ByteReader<'_>) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8()?;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Largest responsibility index the decoder accepts (2⁴⁸ points is far
/// beyond any real trajectory; anything larger is corruption).
const MAX_INDEX: i64 = 1 << 48;

/// Validates a decoded responsibility index or span.
#[inline]
fn checked_index(v: i64) -> Result<usize, CodecError> {
    if (0..=MAX_INDEX).contains(&v) {
        Ok(v as usize)
    } else {
        Err(CodecError::InvalidIndex)
    }
}

/// Flag bit: the segment's start point is an interpolated patch point.
const FLAG_INTERPOLATED_START: u8 = 1 << 0;
/// Flag bit: the segment's end point is an interpolated patch point.
const FLAG_INTERPOLATED_END: u8 = 1 << 1;
/// Flag bit: the segment's start is not the previous segment's end (a
/// discontinuity; always set on the first segment, whose start is encoded
/// as a delta from the origin).
const FLAG_RESTART: u8 = 1 << 2;

/// Quantized representation of a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct QPoint {
    x: i64,
    y: i64,
    t: i64,
}

/// The block codec: quantization resolutions plus the encode/decode logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentCodec {
    /// Spatial quantization step in coordinate units (meters).
    pub spatial_resolution: f64,
    /// Temporal quantization step in seconds.
    pub time_resolution: f64,
}

impl Default for SegmentCodec {
    fn default() -> Self {
        Self {
            spatial_resolution: DEFAULT_SPATIAL_RESOLUTION,
            time_resolution: DEFAULT_TIME_RESOLUTION,
        }
    }
}

impl SegmentCodec {
    /// A codec with explicit resolutions (both must be finite and
    /// positive; callers configure these once per store).
    pub fn new(spatial_resolution: f64, time_resolution: f64) -> Self {
        assert!(
            spatial_resolution.is_finite() && spatial_resolution > 0.0,
            "spatial resolution must be finite and positive"
        );
        assert!(
            time_resolution.is_finite() && time_resolution > 0.0,
            "time resolution must be finite and positive"
        );
        Self {
            spatial_resolution,
            time_resolution,
        }
    }

    /// Upper bound on the planar displacement quantization applies to any
    /// shape point: half a step per axis, `√2/2 · res` combined — reported
    /// as a full `√2 · res` to also cover the induced supporting-line
    /// rotation for responsibility points near the endpoints.
    pub fn spatial_slack(&self) -> f64 {
        self.spatial_resolution * std::f64::consts::SQRT_2
    }

    fn quantize(&self, p: &Point) -> Result<QPoint, CodecError> {
        let q = |v: f64, res: f64| -> Result<i64, CodecError> {
            let scaled = (v / res).round();
            if scaled.abs() > (1i64 << 62) as f64 {
                return Err(CodecError::ValueOutOfRange);
            }
            Ok(scaled as i64)
        };
        Ok(QPoint {
            x: q(p.x, self.spatial_resolution)?,
            y: q(p.y, self.spatial_resolution)?,
            t: q(p.t, self.time_resolution)?,
        })
    }

    fn dequantize(&self, q: QPoint) -> Point {
        Point::new(
            q.x as f64 * self.spatial_resolution,
            q.y as f64 * self.spatial_resolution,
            q.t as f64 * self.time_resolution,
        )
    }

    /// Encodes a piecewise line representation into a compact byte block.
    ///
    /// # Errors
    ///
    /// [`CodecError::ValueOutOfRange`] when a coordinate is too large for
    /// the configured resolution.
    pub fn encode(&self, simplified: &SimplifiedTrajectory) -> Result<Vec<u8>, CodecError> {
        let segments = simplified.segments();
        let mut buf = Vec::with_capacity(8 + segments.len() * 8);
        put_varint(&mut buf, simplified.original_len() as u64);
        put_varint(&mut buf, segments.len() as u64);
        let mut prev_end = QPoint::default();
        let mut prev_last_index = 0u64;
        for (i, s) in segments.iter().enumerate() {
            let start = self.quantize(&s.segment.start)?;
            let end = self.quantize(&s.segment.end)?;
            let restart = i == 0 || start != prev_end;
            let mut flags = 0u8;
            if s.interpolated_start {
                flags |= FLAG_INTERPOLATED_START;
            }
            if s.interpolated_end {
                flags |= FLAG_INTERPOLATED_END;
            }
            if restart {
                flags |= FLAG_RESTART;
            }
            buf.push(flags);
            if restart {
                put_varint(&mut buf, zigzag_encode(start.x.wrapping_sub(prev_end.x)));
                put_varint(&mut buf, zigzag_encode(start.y.wrapping_sub(prev_end.y)));
                put_varint(&mut buf, zigzag_encode(start.t.wrapping_sub(prev_end.t)));
            }
            put_varint(&mut buf, zigzag_encode(end.x.wrapping_sub(start.x)));
            put_varint(&mut buf, zigzag_encode(end.y.wrapping_sub(start.y)));
            put_varint(&mut buf, zigzag_encode(end.t.wrapping_sub(start.t)));
            if i == 0 {
                put_varint(&mut buf, s.first_index as u64);
            } else {
                put_varint(
                    &mut buf,
                    zigzag_encode(s.first_index as i64 - prev_last_index as i64),
                );
            }
            put_varint(&mut buf, (s.last_index - s.first_index) as u64);
            prev_end = end;
            prev_last_index = s.last_index as u64;
        }
        Ok(buf)
    }

    /// Decodes a block produced by [`SegmentCodec::encode`] with the same
    /// resolutions.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] for truncated, overlong or trailing input.
    pub fn decode(&self, bytes: &[u8]) -> Result<SimplifiedTrajectory, CodecError> {
        let mut r = ByteReader::new(bytes);
        let original_len = get_varint(&mut r)? as usize;
        let num_segments = get_varint(&mut r)? as usize;
        // Each segment costs at least 5 bytes (flags + 4 varints); reject
        // counts the input cannot possibly hold before allocating.
        if num_segments > r.remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let mut segments = Vec::with_capacity(num_segments);
        let mut prev_end = QPoint::default();
        let mut prev_last_index = 0u64;
        for i in 0..num_segments {
            let flags = r.get_u8()?;
            let start = if flags & FLAG_RESTART != 0 {
                QPoint {
                    x: prev_end.x.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                    y: prev_end.y.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                    t: prev_end.t.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                }
            } else {
                prev_end
            };
            let end = QPoint {
                x: start.x.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                y: start.y.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                t: start.t.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
            };
            // Index arithmetic on untrusted input: cap everything at
            // MAX_INDEX so a corrupted delta becomes an error instead of
            // an overflow panic (debug) or a silent wrap (release).
            let first_index = if i == 0 {
                checked_index(get_varint(&mut r)? as i64)?
            } else {
                let delta = zigzag_decode(get_varint(&mut r)?);
                checked_index((prev_last_index as i64).checked_add(delta).unwrap_or(-1))?
            };
            let span = checked_index(get_varint(&mut r)? as i64)?;
            let last_index = first_index + span; // both ≤ MAX_INDEX: no overflow
            let mut segment = SimplifiedSegment::new(
                DirectedSegment::new(self.dequantize(start), self.dequantize(end)),
                first_index,
                last_index,
            );
            segment.interpolated_start = flags & FLAG_INTERPOLATED_START != 0;
            segment.interpolated_end = flags & FLAG_INTERPOLATED_END != 0;
            segments.push(segment);
            prev_end = end;
            prev_last_index = last_index as u64;
        }
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes);
        }
        Ok(SimplifiedTrajectory::new(segments, original_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn seg(
        x0: f64,
        y0: f64,
        t0: f64,
        x1: f64,
        y1: f64,
        t1: f64,
        a: usize,
        b: usize,
    ) -> SimplifiedSegment {
        SimplifiedSegment::new(
            DirectedSegment::new(Point::new(x0, y0, t0), Point::new(x1, y1, t1)),
            a,
            b,
        )
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(get_varint(&mut r).unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn empty_representation_roundtrips() {
        let codec = SegmentCodec::default();
        let empty = SimplifiedTrajectory::new(vec![], 1);
        let bytes = codec.encode(&empty).unwrap();
        let back = codec.decode(&bytes).unwrap();
        assert_eq!(back.num_segments(), 0);
        assert_eq!(back.original_len(), 1);
    }

    #[test]
    fn continuous_segments_share_endpoints() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(
            vec![
                seg(0.0, 0.0, 0.0, 10.0, 2.0, 5.0, 0, 5),
                seg(10.0, 2.0, 5.0, 22.0, -1.0, 11.0, 5, 11),
            ],
            12,
        );
        let bytes = codec.encode(&st).unwrap();
        let back = codec.decode(&bytes).unwrap();
        assert_eq!(back.num_segments(), 2);
        assert_eq!(
            back.segments()[0].segment.end,
            back.segments()[1].segment.start
        );
        assert_eq!(back.segments()[0].first_index, 0);
        assert_eq!(back.segments()[1].last_index, 11);
        // A continuous follow-up segment does not re-encode its start.
        let discontinuous = SimplifiedTrajectory::new(
            vec![
                seg(0.0, 0.0, 0.0, 10.0, 2.0, 5.0, 0, 5),
                seg(10.5, 2.5, 5.0, 22.0, -1.0, 11.0, 5, 11),
            ],
            12,
        );
        let longer = codec.encode(&discontinuous).unwrap();
        assert!(longer.len() > bytes.len());
    }

    #[test]
    fn quantization_error_is_bounded() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(
            vec![seg(
                0.004, -0.004, 0.0004, 1234.5678, -9876.5432, 12345.6789, 0, 9,
            )],
            10,
        );
        let back = codec.decode(&codec.encode(&st).unwrap()).unwrap();
        let s = back.segments()[0].segment;
        let orig = st.segments()[0].segment;
        assert!(s.start.distance(&orig.start) <= codec.spatial_slack());
        assert!(s.end.distance(&orig.end) <= codec.spatial_slack());
        assert!((s.start.t - orig.start.t).abs() <= codec.time_resolution);
        // Re-encoding the decoded representation is bit-identical.
        let again = codec.encode(&back).unwrap();
        assert_eq!(again, codec.encode(&st).unwrap());
        let twice = codec.decode(&again).unwrap();
        assert_eq!(twice, back);
    }

    #[test]
    fn interpolation_flags_survive() {
        let codec = SegmentCodec::default();
        let mut s = seg(0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 0, 4);
        s.interpolated_start = true;
        s.interpolated_end = true;
        let st = SimplifiedTrajectory::new(vec![s], 5);
        let back = codec.decode(&codec.encode(&st).unwrap()).unwrap();
        assert!(back.segments()[0].interpolated_start);
        assert!(back.segments()[0].interpolated_end);
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(vec![seg(1e300, 0.0, 0.0, 1.0, 1.0, 1.0, 0, 1)], 2);
        assert_eq!(codec.encode(&st), Err(CodecError::ValueOutOfRange));
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(vec![seg(0.0, 0.0, 0.0, 5.0, 1.0, 3.0, 0, 3)], 4);
        let bytes = codec.encode(&st).unwrap();
        for cut in 1..bytes.len() {
            assert!(
                codec.decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(codec.decode(&extended), Err(CodecError::TrailingBytes));
        // A segment count far beyond the buffer errors instead of allocating.
        let mut bomb = Vec::new();
        put_varint(&mut bomb, 10);
        put_varint(&mut bomb, u64::MAX);
        assert!(codec.decode(&bomb).is_err());
    }

    #[test]
    fn rejects_corrupt_indices() {
        let codec = SegmentCodec::default();
        // Segment 1's first-index delta pulls the running index negative.
        let mut b = Vec::new();
        put_varint(&mut b, 5); // original_len
        put_varint(&mut b, 2); // num_segments
        b.push(4); // seg 0: FLAG_RESTART
        for v in [0i64, 0, 0, 1, 1, 1] {
            put_varint(&mut b, zigzag_encode(v));
        }
        put_varint(&mut b, 0); // first_index
        put_varint(&mut b, 1); // span
        b.push(0); // seg 1: continuous
        for v in [1i64, 1, 1] {
            put_varint(&mut b, zigzag_encode(v));
        }
        put_varint(&mut b, zigzag_encode(-5)); // index 1 - 5 = -4
        put_varint(&mut b, 1);
        assert_eq!(codec.decode(&b), Err(CodecError::InvalidIndex));

        // An implausibly large span is rejected instead of overflowing.
        let mut b = Vec::new();
        put_varint(&mut b, 5);
        put_varint(&mut b, 1);
        b.push(4);
        for v in [0i64, 0, 0, 1, 1, 1] {
            put_varint(&mut b, zigzag_encode(v));
        }
        put_varint(&mut b, 0);
        put_varint(&mut b, u64::MAX); // span
        assert_eq!(codec.decode(&b), Err(CodecError::InvalidIndex));
    }

    #[test]
    fn compactness_beats_raw_representation() {
        // 100 continuous segments on a wavy path: raw in-memory form is
        // 56 bytes per segment; the codec should stay far below that.
        let mut segments = Vec::new();
        let mut prev = Point::new(0.0, 0.0, 0.0);
        for i in 0..100usize {
            let next = Point::new(
                prev.x + 35.0 + (i as f64).sin(),
                prev.y + 10.0 * (i as f64 * 0.7).cos(),
                prev.t + 15.0,
            );
            segments.push(SimplifiedSegment::new(
                DirectedSegment::new(prev, next),
                i * 10,
                (i + 1) * 10,
            ));
            prev = next;
        }
        let st = SimplifiedTrajectory::new(segments, 1001);
        let codec = SegmentCodec::default();
        let bytes = codec.encode(&st).unwrap();
        assert!(
            bytes.len() < 56 * 100 / 3,
            "expected < 1867 bytes, got {}",
            bytes.len()
        );
        let back = codec.decode(&bytes).unwrap();
        assert_eq!(back.num_segments(), 100);
        assert_eq!(back.validate(), Ok(()));
    }
}
