//! Compact binary encoding of piecewise line representations.
//!
//! The storage engine (`traj-store`) keeps simplified trajectories on disk
//! and in memory in this format: coordinates and timestamps are quantized
//! to a configurable resolution (default 1 cm / 1 ms, far below GPS
//! accuracy and the error bounds ζ the algorithms run with) and stored as
//! zig-zag + varint encoded deltas between consecutive shape points, with
//! responsibility index ranges delta-encoded alongside.  A typical OPERB
//! output segment costs a handful of bytes instead of the 56 bytes of its
//! in-memory form.
//!
//! Quantization moves each shape point by at most half a resolution step
//! per axis, so a decoded segment's supporting line is within
//! [`SegmentCodec::spatial_slack`] of the encoded one; consumers that
//! guarantee an error bound ζ on the stored data must account for
//! `ζ + spatial_slack()`.  Encoding is lossy exactly once: re-encoding a
//! decoded representation is bit-identical.
//!
//! ```
//! use traj_geo::DirectedSegment;
//! use traj_model::codec::SegmentCodec;
//! use traj_model::{SimplifiedSegment, SimplifiedTrajectory, Trajectory};
//!
//! let trajectory = Trajectory::from_xy(&[(0.0, 0.0), (10.0, 0.2), (20.0, 0.1)]);
//! let simplified = SimplifiedTrajectory::new(
//!     vec![SimplifiedSegment::new(
//!         DirectedSegment::new(trajectory.first(), trajectory.last()),
//!         0,
//!         2,
//!     )],
//!     trajectory.len(),
//! );
//!
//! let codec = SegmentCodec::default();
//! let bytes = codec.encode(&simplified).unwrap();
//! let back = codec.decode(&bytes).unwrap();
//! assert_eq!(back.num_segments(), 1);
//! assert_eq!(back.segments()[0].first_index, 0);
//! assert_eq!(back.segments()[0].last_index, 2);
//! // Shape points moved by at most the quantization slack.
//! assert!(back.segments()[0].segment.start.distance(&trajectory.first()) <= codec.spatial_slack());
//! ```

use crate::simplified::{SimplifiedSegment, SimplifiedTrajectory};
use traj_geo::{DirectedSegment, Point};

/// Default spatial quantization step: 1 cm.
pub const DEFAULT_SPATIAL_RESOLUTION: f64 = 0.01;
/// Default temporal quantization step: 1 ms.
pub const DEFAULT_TIME_RESOLUTION: f64 = 0.001;

/// Errors produced when encoding or decoding a segment block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A coordinate or timestamp is too large for the configured
    /// resolution (the quantized value does not fit a 63-bit integer).
    ValueOutOfRange,
    /// The byte stream ended in the middle of a record.
    UnexpectedEof,
    /// A varint exceeded the maximum encodable length.
    VarintOverflow,
    /// A decoded responsibility index is negative or implausibly large
    /// (corrupted input).
    InvalidIndex,
    /// Bytes were left over after the last segment.
    TrailingBytes,
    /// A structural field (format tag, flag byte, chunk bit width,
    /// reference overflow) is invalid for the block format being decoded.
    InvalidFormat,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::ValueOutOfRange => {
                write!(f, "coordinate out of range for the codec resolution")
            }
            CodecError::UnexpectedEof => write!(f, "unexpected end of encoded block"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::InvalidIndex => write!(f, "corrupt responsibility index"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after the last segment"),
            CodecError::InvalidFormat => write!(f, "invalid block format structure"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maps a signed integer to an unsigned one with small absolute values
/// staying small (protobuf's zig-zag transform).
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` to `buf` as a base-128 varint (7 payload bits per byte).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A read cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Reads a base-128 varint.
pub fn get_varint(buf: &mut ByteReader<'_>) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8()?;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Largest responsibility index the decoder accepts (2⁴⁸ points is far
/// beyond any real trajectory; anything larger is corruption).
const MAX_INDEX: i64 = 1 << 48;

/// Validates a decoded responsibility index or span.
#[inline]
fn checked_index(v: i64) -> Result<usize, CodecError> {
    if (0..=MAX_INDEX).contains(&v) {
        Ok(v as usize)
    } else {
        Err(CodecError::InvalidIndex)
    }
}

/// On-disk payload format of one encoded block.
///
/// The storage layer tags every block record with the format of its
/// payload, so a single store may mix formats freely: `Varint` blocks
/// written by older stores remain readable forever, and
/// [`crate::codec::SegmentCodec::decode_block_into`] dispatches on the
/// per-block tag, not on any store-wide setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockFormat {
    /// v1: per-segment zig-zag varint deltas.  Most compact on typical
    /// fleets; decode is byte-serial (one data-dependent branch per
    /// varint byte).
    #[default]
    Varint,
    /// v2: chunked fixed-width frame-of-reference columns.  Each column
    /// of 64 values stores a varint reference (the chunk minimum), one
    /// bit-width byte and fixed-width packed offsets; decode is a
    /// branch-lean batched unpack into a reusable [`DecodeArena`].
    ForFixed,
}

impl BlockFormat {
    /// All formats, for sweeping tests and benches.
    pub const ALL: [BlockFormat; 2] = [BlockFormat::Varint, BlockFormat::ForFixed];

    /// The one-byte tag stored in block records.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            BlockFormat::Varint => 1,
            BlockFormat::ForFixed => 2,
        }
    }

    /// Inverse of [`BlockFormat::tag`]; `None` for unknown tags.
    #[inline]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(BlockFormat::Varint),
            2 => Some(BlockFormat::ForFixed),
            _ => None,
        }
    }

    /// Stable lowercase name, accepted back by [`BlockFormat::from_name`].
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            BlockFormat::Varint => "varint",
            BlockFormat::ForFixed => "for",
        }
    }

    /// Parses a format name as used by CLIs and bench flags.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "varint" => Some(BlockFormat::Varint),
            "for" | "for-fixed" | "frame-of-reference" => Some(BlockFormat::ForFixed),
            _ => None,
        }
    }
}

impl std::fmt::Display for BlockFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Flag bit: the segment's start point is an interpolated patch point.
const FLAG_INTERPOLATED_START: u8 = 1 << 0;
/// Flag bit: the segment's end point is an interpolated patch point.
const FLAG_INTERPOLATED_END: u8 = 1 << 1;
/// Flag bit: the segment's start is not the previous segment's end (a
/// discontinuity; always set on the first segment, whose start is encoded
/// as a delta from the origin).
const FLAG_RESTART: u8 = 1 << 2;

/// Mask of the flag bits the frame-of-reference format stores (restart
/// information is implicit there: start deltas are unconditional).
const FOR_FLAG_MASK: u8 = FLAG_INTERPOLATED_START | FLAG_INTERPOLATED_END;

/// Values per frame-of-reference chunk.
const FOR_CHUNK: usize = 64;

/// Appends one column as chunked frame-of-reference data: per chunk of up
/// to [`FOR_CHUNK`] values a varint reference (the chunk minimum), a
/// bit-width byte, then the offsets bit-packed little-endian at that
/// fixed width.
fn put_for_column(buf: &mut Vec<u8>, values: &[u64]) {
    for chunk in values.chunks(FOR_CHUNK) {
        let min = chunk.iter().copied().min().unwrap_or(0);
        let max_offset = chunk.iter().map(|v| v - min).max().unwrap_or(0);
        let width = (64 - max_offset.leading_zeros()) as usize;
        put_varint(buf, min);
        buf.push(width as u8);
        let mut acc: u128 = 0;
        let mut bits = 0usize;
        for &v in chunk {
            acc |= u128::from(v - min) << bits;
            bits += width;
            while bits >= 8 {
                buf.push((acc & 0xff) as u8);
                acc >>= 8;
                bits -= 8;
            }
        }
        if bits > 0 {
            buf.push((acc & 0xff) as u8);
        }
    }
}

/// Reads `n` values of one chunked frame-of-reference column into `out`.
///
/// Rejects bit widths above 64 and reference + offset overflow (both are
/// corruption: the encoder always stores `value - min`).
fn get_for_column(r: &mut ByteReader<'_>, n: usize, out: &mut Vec<u64>) -> Result<(), CodecError> {
    let mut done = 0usize;
    while done < n {
        let len = (n - done).min(FOR_CHUNK);
        let min = get_varint(r)?;
        let width = r.get_u8()? as usize;
        if width > 64 {
            return Err(CodecError::InvalidFormat);
        }
        let packed = r.get_bytes((len * width).div_ceil(8))?;
        if width == 0 {
            // A constant chunk (continuous columns, uniform spans) packs
            // to zero data bytes.
            out.extend(std::iter::repeat_n(min, len));
        } else if width <= 57 {
            // Branch-lean batched path: the chunk's packed bytes are
            // byte-aligned, so copying them into a zero-padded stack
            // buffer makes every value one unaligned little-endian u64
            // load + shift + mask.  Widths ≤ 57 survive the ≤ 7-bit
            // intra-byte shift inside one u64.
            let mut padded = [0u8; FOR_CHUNK * 57 / 8 + 8];
            padded[..packed.len()].copy_from_slice(packed);
            let mask = (1u64 << width) - 1;
            if min.checked_add(mask).is_some() {
                // No offset can overflow: one check for the whole chunk,
                // plain adds inside the loop (extend over a range elides
                // the per-push capacity checks, too).
                out.extend((0..len).map(|k| {
                    let bit = k * width;
                    let at = bit >> 3;
                    let word = u64::from_le_bytes(padded[at..at + 8].try_into().expect("8 bytes"));
                    min + ((word >> (bit & 7)) & mask)
                }));
            } else {
                // `min + mask` wraps only for references near u64::MAX —
                // keep the per-value overflow check on this cold path.
                let mut bit = 0usize;
                for _ in 0..len {
                    let at = bit >> 3;
                    let word = u64::from_le_bytes(padded[at..at + 8].try_into().expect("8 bytes"));
                    let offset = (word >> (bit & 7)) & mask;
                    out.push(min.checked_add(offset).ok_or(CodecError::InvalidFormat)?);
                    bit += width;
                }
            }
        } else {
            // Wide values (58..=64 bits) are vanishingly rare in real
            // columns; the u128 accumulator handles them without
            // unaligned-load edge cases.
            let mask: u128 = (!0u128) >> (128 - width);
            let mut acc: u128 = 0;
            let mut bits = 0usize;
            let mut next = 0usize;
            for _ in 0..len {
                while bits < width {
                    // In bounds by construction: `packed` holds exactly the
                    // ceil(len·width/8) bytes these pulls consume.
                    acc |= u128::from(packed[next]) << bits;
                    next += 1;
                    bits += 8;
                }
                let offset = (acc & mask) as u64;
                acc >>= width;
                bits -= width;
                out.push(min.checked_add(offset).ok_or(CodecError::InvalidFormat)?);
            }
        }
        done += len;
    }
    Ok(())
}

/// Reusable decode scratch space: callers that decode many blocks in a
/// loop (the store's query paths) create one arena per query and reuse
/// its allocations across blocks instead of allocating a fresh
/// `SimplifiedTrajectory` per block.
///
/// After a successful [`SegmentCodec::decode_block_into`] the arena
/// exposes the decoded segments and original length; its contents are
/// replaced by the next decode.  A failed decode leaves the arena empty.
#[derive(Debug, Default)]
pub struct DecodeArena {
    /// Column scratch for frame-of-reference unpacking (8 columns laid
    /// out contiguously).
    scratch: Vec<u64>,
    /// The decoded segments of the most recent block.
    segments: Vec<SimplifiedSegment>,
    /// Original point count of the most recent block.
    original_len: usize,
}

impl DecodeArena {
    /// An empty arena; allocations grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segments decoded by the most recent `decode_block_into`.
    #[inline]
    pub fn segments(&self) -> &[SimplifiedSegment] {
        &self.segments
    }

    /// Original point count decoded by the most recent
    /// `decode_block_into`.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Moves the decoded representation out, leaving the arena empty but
    /// with its scratch allocation intact.
    pub fn take_trajectory(&mut self) -> SimplifiedTrajectory {
        SimplifiedTrajectory::new(std::mem::take(&mut self.segments), self.original_len)
    }
}

/// Quantized representation of a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct QPoint {
    x: i64,
    y: i64,
    t: i64,
}

/// The block codec: quantization resolutions plus the encode/decode logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentCodec {
    /// Spatial quantization step in coordinate units (meters).
    pub spatial_resolution: f64,
    /// Temporal quantization step in seconds.
    pub time_resolution: f64,
}

impl Default for SegmentCodec {
    fn default() -> Self {
        Self {
            spatial_resolution: DEFAULT_SPATIAL_RESOLUTION,
            time_resolution: DEFAULT_TIME_RESOLUTION,
        }
    }
}

impl SegmentCodec {
    /// A codec with explicit resolutions (both must be finite and
    /// positive; callers configure these once per store).
    pub fn new(spatial_resolution: f64, time_resolution: f64) -> Self {
        assert!(
            spatial_resolution.is_finite() && spatial_resolution > 0.0,
            "spatial resolution must be finite and positive"
        );
        assert!(
            time_resolution.is_finite() && time_resolution > 0.0,
            "time resolution must be finite and positive"
        );
        Self {
            spatial_resolution,
            time_resolution,
        }
    }

    /// Upper bound on the planar displacement quantization applies to any
    /// shape point: half a step per axis, `√2/2 · res` combined — reported
    /// as a full `√2 · res` to also cover the induced supporting-line
    /// rotation for responsibility points near the endpoints.
    pub fn spatial_slack(&self) -> f64 {
        self.spatial_resolution * std::f64::consts::SQRT_2
    }

    fn quantize(&self, p: &Point) -> Result<QPoint, CodecError> {
        let q = |v: f64, res: f64| -> Result<i64, CodecError> {
            let scaled = (v / res).round();
            if scaled.abs() > (1i64 << 62) as f64 {
                return Err(CodecError::ValueOutOfRange);
            }
            Ok(scaled as i64)
        };
        Ok(QPoint {
            x: q(p.x, self.spatial_resolution)?,
            y: q(p.y, self.spatial_resolution)?,
            t: q(p.t, self.time_resolution)?,
        })
    }

    fn dequantize(&self, q: QPoint) -> Point {
        Point::new(
            q.x as f64 * self.spatial_resolution,
            q.y as f64 * self.spatial_resolution,
            q.t as f64 * self.time_resolution,
        )
    }

    /// Encodes a piecewise line representation into a compact byte block.
    ///
    /// # Errors
    ///
    /// [`CodecError::ValueOutOfRange`] when a coordinate is too large for
    /// the configured resolution.
    pub fn encode(&self, simplified: &SimplifiedTrajectory) -> Result<Vec<u8>, CodecError> {
        let segments = simplified.segments();
        let mut buf = Vec::with_capacity(8 + segments.len() * 8);
        put_varint(&mut buf, simplified.original_len() as u64);
        put_varint(&mut buf, segments.len() as u64);
        let mut prev_end = QPoint::default();
        let mut prev_last_index = 0u64;
        for (i, s) in segments.iter().enumerate() {
            let start = self.quantize(&s.segment.start)?;
            let end = self.quantize(&s.segment.end)?;
            let restart = i == 0 || start != prev_end;
            let mut flags = 0u8;
            if s.interpolated_start {
                flags |= FLAG_INTERPOLATED_START;
            }
            if s.interpolated_end {
                flags |= FLAG_INTERPOLATED_END;
            }
            if restart {
                flags |= FLAG_RESTART;
            }
            buf.push(flags);
            if restart {
                put_varint(&mut buf, zigzag_encode(start.x.wrapping_sub(prev_end.x)));
                put_varint(&mut buf, zigzag_encode(start.y.wrapping_sub(prev_end.y)));
                put_varint(&mut buf, zigzag_encode(start.t.wrapping_sub(prev_end.t)));
            }
            put_varint(&mut buf, zigzag_encode(end.x.wrapping_sub(start.x)));
            put_varint(&mut buf, zigzag_encode(end.y.wrapping_sub(start.y)));
            put_varint(&mut buf, zigzag_encode(end.t.wrapping_sub(start.t)));
            if i == 0 {
                put_varint(&mut buf, s.first_index as u64);
            } else {
                put_varint(
                    &mut buf,
                    zigzag_encode(s.first_index as i64 - prev_last_index as i64),
                );
            }
            put_varint(&mut buf, (s.last_index - s.first_index) as u64);
            prev_end = end;
            prev_last_index = s.last_index as u64;
        }
        Ok(buf)
    }

    /// Decodes a block produced by [`SegmentCodec::encode`] with the same
    /// resolutions.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] for truncated, overlong or trailing input.
    pub fn decode(&self, bytes: &[u8]) -> Result<SimplifiedTrajectory, CodecError> {
        self.decode_block(BlockFormat::Varint, bytes)
    }

    /// [`SegmentCodec::decode`], writing into a reusable arena.
    fn decode_varint_into(&self, bytes: &[u8], arena: &mut DecodeArena) -> Result<(), CodecError> {
        let segments = &mut arena.segments;
        let mut r = ByteReader::new(bytes);
        let original_len = get_varint(&mut r)? as usize;
        let num_segments = get_varint(&mut r)? as usize;
        // Each segment costs at least 5 bytes (flags + 4 varints); reject
        // counts the input cannot possibly hold before allocating.
        if num_segments > r.remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        segments.reserve(num_segments);
        let mut prev_end = QPoint::default();
        let mut prev_last_index = 0u64;
        for i in 0..num_segments {
            let flags = r.get_u8()?;
            let start = if flags & FLAG_RESTART != 0 {
                QPoint {
                    x: prev_end.x.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                    y: prev_end.y.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                    t: prev_end.t.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                }
            } else {
                prev_end
            };
            let end = QPoint {
                x: start.x.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                y: start.y.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
                t: start.t.wrapping_add(zigzag_decode(get_varint(&mut r)?)),
            };
            // Index arithmetic on untrusted input: cap everything at
            // MAX_INDEX so a corrupted delta becomes an error instead of
            // an overflow panic (debug) or a silent wrap (release).
            let first_index = if i == 0 {
                checked_index(get_varint(&mut r)? as i64)?
            } else {
                let delta = zigzag_decode(get_varint(&mut r)?);
                checked_index((prev_last_index as i64).checked_add(delta).unwrap_or(-1))?
            };
            let span = checked_index(get_varint(&mut r)? as i64)?;
            let last_index = first_index + span; // both ≤ MAX_INDEX: no overflow
            let mut segment = SimplifiedSegment::new(
                DirectedSegment::new(self.dequantize(start), self.dequantize(end)),
                first_index,
                last_index,
            );
            segment.interpolated_start = flags & FLAG_INTERPOLATED_START != 0;
            segment.interpolated_end = flags & FLAG_INTERPOLATED_END != 0;
            segments.push(segment);
            prev_end = end;
            prev_last_index = last_index as u64;
        }
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes);
        }
        arena.original_len = original_len;
        Ok(())
    }

    /// Encodes into the chunked fixed-width frame-of-reference format.
    fn encode_for(&self, simplified: &SimplifiedTrajectory) -> Result<Vec<u8>, CodecError> {
        let segments = simplified.segments();
        let n = segments.len();
        let mut buf = Vec::with_capacity(16 + n * 9);
        put_varint(&mut buf, simplified.original_len() as u64);
        put_varint(&mut buf, n as u64);
        let mut cols: [Vec<u64>; 8] = Default::default();
        for col in &mut cols {
            col.reserve(n);
        }
        let mut prev_end = QPoint::default();
        let mut prev_last_index = 0u64;
        for s in segments {
            let start = self.quantize(&s.segment.start)?;
            let end = self.quantize(&s.segment.end)?;
            let mut flags = 0u8;
            if s.interpolated_start {
                flags |= FLAG_INTERPOLATED_START;
            }
            if s.interpolated_end {
                flags |= FLAG_INTERPOLATED_END;
            }
            buf.push(flags);
            // Start deltas are unconditional: a continuous segment yields
            // three zeros that frame-of-reference packs at width 0.
            cols[0].push(zigzag_encode(start.x.wrapping_sub(prev_end.x)));
            cols[1].push(zigzag_encode(start.y.wrapping_sub(prev_end.y)));
            cols[2].push(zigzag_encode(start.t.wrapping_sub(prev_end.t)));
            cols[3].push(zigzag_encode(end.x.wrapping_sub(start.x)));
            cols[4].push(zigzag_encode(end.y.wrapping_sub(start.y)));
            cols[5].push(zigzag_encode(end.t.wrapping_sub(start.t)));
            cols[6].push(zigzag_encode(s.first_index as i64 - prev_last_index as i64));
            cols[7].push((s.last_index - s.first_index) as u64);
            prev_end = end;
            prev_last_index = s.last_index as u64;
        }
        for col in &cols {
            put_for_column(&mut buf, col);
        }
        Ok(buf)
    }

    /// Decodes the frame-of-reference format into a reusable arena.
    fn decode_for_into(&self, bytes: &[u8], arena: &mut DecodeArena) -> Result<(), CodecError> {
        let DecodeArena {
            scratch, segments, ..
        } = arena;
        let mut r = ByteReader::new(bytes);
        let original_len = get_varint(&mut r)? as usize;
        let n = get_varint(&mut r)? as usize;
        // Each segment costs at least one flag byte; reject counts the
        // input cannot possibly hold before allocating.
        if n > r.remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let flags = r.get_bytes(n)?;
        scratch.reserve(8 * n);
        for _ in 0..8 {
            get_for_column(&mut r, n, scratch)?;
        }
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes);
        }
        if flags.iter().any(|f| f & !FOR_FLAG_MASK != 0) {
            return Err(CodecError::InvalidFormat);
        }
        segments.reserve(n);
        // Split the contiguous scratch into its eight column slices so the
        // hot loop below runs on zipped iterators, without bounds checks.
        let (sx, rest) = scratch.split_at(n);
        let (sy, rest) = rest.split_at(n);
        let (st, rest) = rest.split_at(n);
        let (ex, rest) = rest.split_at(n);
        let (ey, rest) = rest.split_at(n);
        let (et, rest) = rest.split_at(n);
        let (idx, span_col) = rest.split_at(n);
        let mut prev_end = QPoint::default();
        let mut prev_last_index = 0u64;
        let columns = sx
            .iter()
            .zip(sy)
            .zip(st)
            .zip(ex)
            .zip(ey)
            .zip(et)
            .zip(idx)
            .zip(span_col)
            .zip(flags);
        for ((((((((&dsx, &dsy), &dst), &dex), &dey), &det), &didx), &dspan), &flag) in columns {
            let start = QPoint {
                x: prev_end.x.wrapping_add(zigzag_decode(dsx)),
                y: prev_end.y.wrapping_add(zigzag_decode(dsy)),
                t: prev_end.t.wrapping_add(zigzag_decode(dst)),
            };
            let end = QPoint {
                x: start.x.wrapping_add(zigzag_decode(dex)),
                y: start.y.wrapping_add(zigzag_decode(dey)),
                t: start.t.wrapping_add(zigzag_decode(det)),
            };
            // Same hardening as the varint path: corrupted index deltas
            // become errors, never overflow.
            let delta = zigzag_decode(didx);
            let first_index =
                checked_index((prev_last_index as i64).checked_add(delta).unwrap_or(-1))?;
            let span = checked_index(dspan as i64)?;
            let last_index = first_index + span; // both ≤ MAX_INDEX: no overflow
            let mut segment = SimplifiedSegment::new(
                DirectedSegment::new(self.dequantize(start), self.dequantize(end)),
                first_index,
                last_index,
            );
            segment.interpolated_start = flag & FLAG_INTERPOLATED_START != 0;
            segment.interpolated_end = flag & FLAG_INTERPOLATED_END != 0;
            segments.push(segment);
            prev_end = end;
            prev_last_index = last_index as u64;
        }
        arena.original_len = original_len;
        Ok(())
    }

    /// Encodes a representation in the requested block format.
    ///
    /// # Errors
    ///
    /// [`CodecError::ValueOutOfRange`] when a coordinate is too large for
    /// the configured resolution.
    pub fn encode_block(
        &self,
        format: BlockFormat,
        simplified: &SimplifiedTrajectory,
    ) -> Result<Vec<u8>, CodecError> {
        match format {
            BlockFormat::Varint => self.encode(simplified),
            BlockFormat::ForFixed => self.encode_for(simplified),
        }
    }

    /// Decodes a block of the given format into `arena`, replacing its
    /// previous contents.  On error the arena is left empty.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] for truncated, overlong, trailing or
    /// structurally invalid input.
    pub fn decode_block_into(
        &self,
        format: BlockFormat,
        bytes: &[u8],
        arena: &mut DecodeArena,
    ) -> Result<(), CodecError> {
        arena.segments.clear();
        arena.scratch.clear();
        arena.original_len = 0;
        let result = match format {
            BlockFormat::Varint => self.decode_varint_into(bytes, arena),
            BlockFormat::ForFixed => self.decode_for_into(bytes, arena),
        };
        if result.is_err() {
            arena.segments.clear();
        }
        result
    }

    /// Decodes a block of the given format into a fresh representation.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] for truncated, overlong, trailing or
    /// structurally invalid input.
    pub fn decode_block(
        &self,
        format: BlockFormat,
        bytes: &[u8],
    ) -> Result<SimplifiedTrajectory, CodecError> {
        let mut arena = DecodeArena::new();
        self.decode_block_into(format, bytes, &mut arena)?;
        Ok(arena.take_trajectory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn seg(
        x0: f64,
        y0: f64,
        t0: f64,
        x1: f64,
        y1: f64,
        t1: f64,
        a: usize,
        b: usize,
    ) -> SimplifiedSegment {
        SimplifiedSegment::new(
            DirectedSegment::new(Point::new(x0, y0, t0), Point::new(x1, y1, t1)),
            a,
            b,
        )
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(get_varint(&mut r).unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn empty_representation_roundtrips() {
        let codec = SegmentCodec::default();
        let empty = SimplifiedTrajectory::new(vec![], 1);
        let bytes = codec.encode(&empty).unwrap();
        let back = codec.decode(&bytes).unwrap();
        assert_eq!(back.num_segments(), 0);
        assert_eq!(back.original_len(), 1);
    }

    #[test]
    fn continuous_segments_share_endpoints() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(
            vec![
                seg(0.0, 0.0, 0.0, 10.0, 2.0, 5.0, 0, 5),
                seg(10.0, 2.0, 5.0, 22.0, -1.0, 11.0, 5, 11),
            ],
            12,
        );
        let bytes = codec.encode(&st).unwrap();
        let back = codec.decode(&bytes).unwrap();
        assert_eq!(back.num_segments(), 2);
        assert_eq!(
            back.segments()[0].segment.end,
            back.segments()[1].segment.start
        );
        assert_eq!(back.segments()[0].first_index, 0);
        assert_eq!(back.segments()[1].last_index, 11);
        // A continuous follow-up segment does not re-encode its start.
        let discontinuous = SimplifiedTrajectory::new(
            vec![
                seg(0.0, 0.0, 0.0, 10.0, 2.0, 5.0, 0, 5),
                seg(10.5, 2.5, 5.0, 22.0, -1.0, 11.0, 5, 11),
            ],
            12,
        );
        let longer = codec.encode(&discontinuous).unwrap();
        assert!(longer.len() > bytes.len());
    }

    #[test]
    fn quantization_error_is_bounded() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(
            vec![seg(
                0.004, -0.004, 0.0004, 1234.5678, -9876.5432, 12345.6789, 0, 9,
            )],
            10,
        );
        let back = codec.decode(&codec.encode(&st).unwrap()).unwrap();
        let s = back.segments()[0].segment;
        let orig = st.segments()[0].segment;
        assert!(s.start.distance(&orig.start) <= codec.spatial_slack());
        assert!(s.end.distance(&orig.end) <= codec.spatial_slack());
        assert!((s.start.t - orig.start.t).abs() <= codec.time_resolution);
        // Re-encoding the decoded representation is bit-identical.
        let again = codec.encode(&back).unwrap();
        assert_eq!(again, codec.encode(&st).unwrap());
        let twice = codec.decode(&again).unwrap();
        assert_eq!(twice, back);
    }

    #[test]
    fn interpolation_flags_survive() {
        let codec = SegmentCodec::default();
        let mut s = seg(0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 0, 4);
        s.interpolated_start = true;
        s.interpolated_end = true;
        let st = SimplifiedTrajectory::new(vec![s], 5);
        let back = codec.decode(&codec.encode(&st).unwrap()).unwrap();
        assert!(back.segments()[0].interpolated_start);
        assert!(back.segments()[0].interpolated_end);
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(vec![seg(1e300, 0.0, 0.0, 1.0, 1.0, 1.0, 0, 1)], 2);
        assert_eq!(codec.encode(&st), Err(CodecError::ValueOutOfRange));
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        let codec = SegmentCodec::default();
        let st = SimplifiedTrajectory::new(vec![seg(0.0, 0.0, 0.0, 5.0, 1.0, 3.0, 0, 3)], 4);
        let bytes = codec.encode(&st).unwrap();
        for cut in 1..bytes.len() {
            assert!(
                codec.decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(codec.decode(&extended), Err(CodecError::TrailingBytes));
        // A segment count far beyond the buffer errors instead of allocating.
        let mut bomb = Vec::new();
        put_varint(&mut bomb, 10);
        put_varint(&mut bomb, u64::MAX);
        assert!(codec.decode(&bomb).is_err());
    }

    #[test]
    fn rejects_corrupt_indices() {
        let codec = SegmentCodec::default();
        // Segment 1's first-index delta pulls the running index negative.
        let mut b = Vec::new();
        put_varint(&mut b, 5); // original_len
        put_varint(&mut b, 2); // num_segments
        b.push(4); // seg 0: FLAG_RESTART
        for v in [0i64, 0, 0, 1, 1, 1] {
            put_varint(&mut b, zigzag_encode(v));
        }
        put_varint(&mut b, 0); // first_index
        put_varint(&mut b, 1); // span
        b.push(0); // seg 1: continuous
        for v in [1i64, 1, 1] {
            put_varint(&mut b, zigzag_encode(v));
        }
        put_varint(&mut b, zigzag_encode(-5)); // index 1 - 5 = -4
        put_varint(&mut b, 1);
        assert_eq!(codec.decode(&b), Err(CodecError::InvalidIndex));

        // An implausibly large span is rejected instead of overflowing.
        let mut b = Vec::new();
        put_varint(&mut b, 5);
        put_varint(&mut b, 1);
        b.push(4);
        for v in [0i64, 0, 0, 1, 1, 1] {
            put_varint(&mut b, zigzag_encode(v));
        }
        put_varint(&mut b, 0);
        put_varint(&mut b, u64::MAX); // span
        assert_eq!(codec.decode(&b), Err(CodecError::InvalidIndex));
    }

    #[test]
    fn compactness_beats_raw_representation() {
        // 100 continuous segments on a wavy path: raw in-memory form is
        // 56 bytes per segment; the codec should stay far below that.
        let mut segments = Vec::new();
        let mut prev = Point::new(0.0, 0.0, 0.0);
        for i in 0..100usize {
            let next = Point::new(
                prev.x + 35.0 + (i as f64).sin(),
                prev.y + 10.0 * (i as f64 * 0.7).cos(),
                prev.t + 15.0,
            );
            segments.push(SimplifiedSegment::new(
                DirectedSegment::new(prev, next),
                i * 10,
                (i + 1) * 10,
            ));
            prev = next;
        }
        let st = SimplifiedTrajectory::new(segments, 1001);
        let codec = SegmentCodec::default();
        let bytes = codec.encode(&st).unwrap();
        assert!(
            bytes.len() < 56 * 100 / 3,
            "expected < 1867 bytes, got {}",
            bytes.len()
        );
        let back = codec.decode(&bytes).unwrap();
        assert_eq!(back.num_segments(), 100);
        assert_eq!(back.validate(), Ok(()));
    }

    fn wavy(segments: usize) -> SimplifiedTrajectory {
        let mut out = Vec::new();
        let mut prev = Point::new(3.7, -12.5, 100.0);
        for i in 0..segments {
            let next = Point::new(
                prev.x + 35.0 + (i as f64).sin(),
                prev.y + 10.0 * (i as f64 * 0.7).cos(),
                prev.t + 15.0,
            );
            let mut s = SimplifiedSegment::new(
                DirectedSegment::new(prev, next),
                i * 10,
                (i + 1) * 10 + (i % 3),
            );
            s.interpolated_start = i % 5 == 0;
            s.interpolated_end = i % 7 == 0;
            out.push(s);
            // Every 11th segment restarts from a displaced point.
            prev = if i % 11 == 10 {
                Point::new(next.x + 500.0, next.y - 250.0, next.t + 60.0)
            } else {
                next
            };
        }
        SimplifiedTrajectory::new(out, segments * 10 + 3)
    }

    #[test]
    fn block_format_tags_and_names_roundtrip() {
        for format in BlockFormat::ALL {
            assert_eq!(BlockFormat::from_tag(format.tag()), Some(format));
            assert_eq!(BlockFormat::from_name(format.name()), Some(format));
        }
        assert_eq!(BlockFormat::from_tag(0), None);
        assert_eq!(BlockFormat::from_tag(3), None);
        assert_eq!(BlockFormat::from_name("gzip"), None);
    }

    #[test]
    fn for_column_roundtrips_extreme_values() {
        for values in [
            vec![],
            vec![0u64],
            vec![u64::MAX],
            vec![u64::MAX, 0, u64::MAX, 1],
            vec![7; 200],
            (0..130u64).map(|i| i * i * 31).collect::<Vec<_>>(),
        ] {
            let mut buf = Vec::new();
            put_for_column(&mut buf, &values);
            let mut r = ByteReader::new(&buf);
            let mut out = Vec::new();
            get_for_column(&mut r, values.len(), &mut out).unwrap();
            assert_eq!(out, values);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn for_format_roundtrips_and_matches_varint_decode() {
        let codec = SegmentCodec::default();
        for n in [0usize, 1, 2, 63, 64, 65, 200] {
            let st = wavy(n);
            let varint = codec.encode_block(BlockFormat::Varint, &st).unwrap();
            let packed = codec.encode_block(BlockFormat::ForFixed, &st).unwrap();
            let a = codec.decode_block(BlockFormat::Varint, &varint).unwrap();
            let b = codec.decode_block(BlockFormat::ForFixed, &packed).unwrap();
            assert_eq!(a, b, "formats disagree at {n} segments");
            // Lossy exactly once, for both formats.
            assert_eq!(codec.encode_block(BlockFormat::ForFixed, &b).unwrap(), {
                let again = codec.decode_block(BlockFormat::ForFixed, &packed).unwrap();
                codec.encode_block(BlockFormat::ForFixed, &again).unwrap()
            });
        }
    }

    #[test]
    fn for_format_rejects_truncation_trailing_and_bombs() {
        let codec = SegmentCodec::default();
        let bytes = codec
            .encode_block(BlockFormat::ForFixed, &wavy(10))
            .unwrap();
        for cut in 0..bytes.len() {
            assert!(
                codec
                    .decode_block(BlockFormat::ForFixed, &bytes[..cut])
                    .is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            codec.decode_block(BlockFormat::ForFixed, &extended),
            Err(CodecError::TrailingBytes)
        );
        let mut bomb = Vec::new();
        put_varint(&mut bomb, 10);
        put_varint(&mut bomb, u64::MAX);
        assert!(codec.decode_block(BlockFormat::ForFixed, &bomb).is_err());
    }

    #[test]
    fn for_format_rejects_bad_flags_and_widths() {
        let codec = SegmentCodec::default();
        let bytes = codec.encode_block(BlockFormat::ForFixed, &wavy(3)).unwrap();
        // Header is two one-byte varints here; flag bytes follow.
        let mut bad_flags = bytes.clone();
        bad_flags[2] |= FLAG_RESTART;
        assert_eq!(
            codec.decode_block(BlockFormat::ForFixed, &bad_flags),
            Err(CodecError::InvalidFormat)
        );
        // A width byte above 64 is structural corruption.  The first
        // column chunk starts right after the 3 flag bytes: varint min,
        // then the width byte.
        let mut r = ByteReader::new(&bytes[5..]);
        get_varint(&mut r).unwrap();
        let width_at = 5 + {
            let mut probe = ByteReader::new(&bytes[5..]);
            get_varint(&mut probe).unwrap();
            bytes[5..].len() - probe.remaining()
        };
        let mut bad_width = bytes.clone();
        bad_width[width_at] = 65;
        assert!(codec
            .decode_block(BlockFormat::ForFixed, &bad_width)
            .is_err());
    }

    #[test]
    fn arena_reuse_is_equivalent_to_fresh_decode() {
        let codec = SegmentCodec::default();
        let mut arena = DecodeArena::new();
        for n in [5usize, 120, 1, 64] {
            let st = wavy(n);
            for format in BlockFormat::ALL {
                let bytes = codec.encode_block(format, &st).unwrap();
                codec.decode_block_into(format, &bytes, &mut arena).unwrap();
                let fresh = codec.decode_block(format, &bytes).unwrap();
                assert_eq!(arena.segments(), fresh.segments());
                assert_eq!(arena.original_len(), fresh.original_len());
            }
        }
        // A failed decode leaves the arena empty.
        assert!(codec
            .decode_block_into(BlockFormat::ForFixed, &[7, 1], &mut arena)
            .is_err());
        assert!(arena.segments().is_empty());
    }

    #[test]
    fn for_format_stays_compact() {
        let st = wavy(100);
        let codec = SegmentCodec::default();
        let varint = codec.encode_block(BlockFormat::Varint, &st).unwrap();
        let packed = codec.encode_block(BlockFormat::ForFixed, &st).unwrap();
        // Frame-of-reference trades a little space for batched decode; it
        // must stay in the same ballpark as varint, far below raw form.
        assert!(
            packed.len() < varint.len() * 2,
            "for {} vs varint {}",
            packed.len(),
            varint.len()
        );
        assert!(packed.len() < 56 * 100 / 2);
    }
}
