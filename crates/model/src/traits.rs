//! Algorithm interfaces: batch and streaming (one-pass / online)
//! simplifiers, and the adapter that lets a streaming algorithm be used as a
//! batch one.

use crate::error::TrajectoryError;
use crate::simplified::{SimplifiedSegment, SimplifiedTrajectory};
use crate::trajectory::Trajectory;
use traj_geo::Point;

/// A batch trajectory simplification algorithm (e.g. DP): the whole
/// trajectory must be available before simplification starts.
pub trait BatchSimplifier {
    /// Human-readable algorithm name, used by the experiment harness.
    fn name(&self) -> &'static str;

    /// Simplifies `trajectory` under the error bound `epsilon` (the paper's
    /// `ζ`, in the same length unit as the point coordinates).
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::InvalidErrorBound`] when `epsilon` is not
    /// finite and positive.
    fn simplify(
        &self,
        trajectory: &Trajectory,
        epsilon: f64,
    ) -> Result<SimplifiedTrajectory, TrajectoryError>;
}

/// A streaming (online) trajectory simplification algorithm.
///
/// Points are pushed one at a time in trajectory order; the algorithm emits
/// finished directed line segments as soon as they are determined and must
/// be `finish`ed to flush the trailing segment.  One-pass algorithms (OPERB,
/// OPERB-A, FBQS) look at each pushed point O(1) times and keep O(1) state;
/// window algorithms (OPW, BQS) buffer points internally but expose the same
/// interface.
pub trait StreamingSimplifier {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// The error bound this instance was configured with.
    fn epsilon(&self) -> f64;

    /// Feeds the next point.  Any segments that became final are appended to
    /// `out` (most pushes append nothing).
    fn push(&mut self, point: Point, out: &mut Vec<SimplifiedSegment>);

    /// Signals the end of the trajectory, flushing any pending segments.
    /// After `finish` the simplifier is reset and may be reused for a new
    /// trajectory.
    fn finish(&mut self, out: &mut Vec<SimplifiedSegment>);

    /// Number of points pushed since construction or the last `finish`.
    fn points_seen(&self) -> usize;
}

/// Blanket adapter: runs a [`StreamingSimplifier`] over a whole
/// [`Trajectory`] and assembles the [`SimplifiedTrajectory`].
///
/// The adapter owns a *factory* closure so that each `simplify` call gets a
/// fresh simplifier configured with the requested `epsilon`.
pub struct StreamingAdapter<F> {
    name: &'static str,
    factory: F,
}

impl<F, S> StreamingAdapter<F>
where
    F: Fn(f64) -> S,
    S: StreamingSimplifier,
{
    /// Creates an adapter with the given display name and simplifier
    /// factory.
    pub fn new(name: &'static str, factory: F) -> Self {
        Self { name, factory }
    }

    /// Runs the streaming simplifier over the trajectory.
    pub fn run(
        &self,
        trajectory: &Trajectory,
        epsilon: f64,
    ) -> Result<SimplifiedTrajectory, TrajectoryError> {
        validate_epsilon(epsilon)?;
        let mut simplifier = (self.factory)(epsilon);
        let mut segments = Vec::new();
        for &p in trajectory.points() {
            simplifier.push(p, &mut segments);
        }
        simplifier.finish(&mut segments);
        Ok(SimplifiedTrajectory::new(segments, trajectory.len()))
    }
}

impl<F, S> BatchSimplifier for StreamingAdapter<F>
where
    F: Fn(f64) -> S,
    S: StreamingSimplifier,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn simplify(
        &self,
        trajectory: &Trajectory,
        epsilon: f64,
    ) -> Result<SimplifiedTrajectory, TrajectoryError> {
        self.run(trajectory, epsilon)
    }
}

/// The unified, thread-safe simplifier interface consumed by the parallel
/// fleet pipeline (`traj-pipeline`).
///
/// Every [`BatchSimplifier`] that is `Send + Sync` (in practice: all of
/// them — DP, TD-TR, OPW, BQS, FBQS, OPERB, OPERB-A, the sampling
/// baselines and the delta codec) implements `Simplifier` automatically
/// through a blanket impl, so an `Arc<dyn Simplifier>` can be shared across
/// worker threads and the pipeline stays algorithm-agnostic.
pub trait Simplifier: Send + Sync {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Simplifies `trajectory` under the error bound `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::InvalidErrorBound`] when `epsilon` is not
    /// finite and positive.
    fn simplify(
        &self,
        trajectory: &Trajectory,
        epsilon: f64,
    ) -> Result<SimplifiedTrajectory, TrajectoryError>;
}

impl<T: BatchSimplifier + Send + Sync> Simplifier for T {
    fn name(&self) -> &'static str {
        BatchSimplifier::name(self)
    }

    fn simplify(
        &self,
        trajectory: &Trajectory,
        epsilon: f64,
    ) -> Result<SimplifiedTrajectory, TrajectoryError> {
        BatchSimplifier::simplify(self, trajectory, epsilon)
    }
}

/// A boxed streaming simplifier that can be moved onto a worker thread.
pub type BoxedStreamingSimplifier = Box<dyn StreamingSimplifier + Send>;

/// A shareable factory producing a fresh streaming simplifier per
/// trajectory stream, configured with the requested error bound.  This is
/// how online algorithms (OPERB, OPERB-A, OPW, BQS, FBQS) plug into the
/// fleet pipeline: each concurrent device stream gets its own simplifier
/// state from the factory.
pub type StreamingFactory = std::sync::Arc<dyn Fn(f64) -> BoxedStreamingSimplifier + Send + Sync>;

/// Validates an error bound `ζ`.
pub fn validate_epsilon(epsilon: f64) -> Result<(), TrajectoryError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        Err(TrajectoryError::InvalidErrorBound { value: epsilon })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geo::DirectedSegment;

    /// A toy streaming simplifier that emits one segment per pushed pair of
    /// points — enough to exercise the adapter plumbing.
    struct PairEmitter {
        epsilon: f64,
        pending: Option<(Point, usize)>,
        start: Option<(Point, usize)>,
        seen: usize,
    }

    impl PairEmitter {
        fn new(epsilon: f64) -> Self {
            Self {
                epsilon,
                pending: None,
                start: None,
                seen: 0,
            }
        }
    }

    impl StreamingSimplifier for PairEmitter {
        fn name(&self) -> &'static str {
            "pair-emitter"
        }
        fn epsilon(&self) -> f64 {
            self.epsilon
        }
        fn push(&mut self, point: Point, out: &mut Vec<SimplifiedSegment>) {
            let idx = self.seen;
            self.seen += 1;
            if self.start.is_none() {
                self.start = Some((point, idx));
                return;
            }
            if let Some((s, si)) = self.start {
                out.push(SimplifiedSegment::new(
                    DirectedSegment::new(s, point),
                    si,
                    idx,
                ));
                self.start = Some((point, idx));
            }
            self.pending = Some((point, idx));
        }
        fn finish(&mut self, _out: &mut Vec<SimplifiedSegment>) {
            self.start = None;
            self.pending = None;
            self.seen = 0;
        }
        fn points_seen(&self) -> usize {
            self.seen
        }
    }

    #[test]
    fn adapter_runs_streaming_simplifier() {
        let adapter = StreamingAdapter::new("pairs", PairEmitter::new);
        let traj = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let out = BatchSimplifier::simplify(&adapter, &traj, 1.0).unwrap();
        assert_eq!(out.num_segments(), 2);
        assert_eq!(out.original_len(), 3);
        assert_eq!(BatchSimplifier::name(&adapter), "pairs");
        assert_eq!(Simplifier::name(&adapter), "pairs");
        assert_eq!(out.validate(), Ok(()));
    }

    #[test]
    fn adapter_rejects_bad_epsilon() {
        let adapter = StreamingAdapter::new("pairs", PairEmitter::new);
        let traj = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 0.0)]);
        assert!(matches!(
            BatchSimplifier::simplify(&adapter, &traj, 0.0),
            Err(TrajectoryError::InvalidErrorBound { .. })
        ));
        assert!(matches!(
            Simplifier::simplify(&adapter, &traj, f64::NAN),
            Err(TrajectoryError::InvalidErrorBound { .. })
        ));
        assert!(matches!(
            BatchSimplifier::simplify(&adapter, &traj, -3.0),
            Err(TrajectoryError::InvalidErrorBound { .. })
        ));
    }

    #[test]
    fn validate_epsilon_accepts_positive() {
        assert!(validate_epsilon(0.5).is_ok());
        assert!(validate_epsilon(1e9).is_ok());
        assert!(validate_epsilon(f64::INFINITY).is_err());
    }
}
