//! A minimal, dependency-free JSON value type with a writer and parser.
//!
//! The experiment harness serializes its reports to JSON for downstream
//! analysis, but this workspace builds offline (no `serde`/`serde_json`).
//! This module covers the small slice of JSON the workspace needs: finite
//! numbers, strings, booleans, null, arrays and objects — enough to write
//! and re-read [`crate::Trajectory`]-derived statistics and experiment
//! reports.
//!
//! Object key order is preserved (insertion order), numbers are `f64`
//! (integers round-trip exactly up to 2⁵³) and the compact writer matches
//! `serde_json`'s spacing so existing downstream tooling keeps working.
//!
//! ```
//! use traj_model::json::JsonValue;
//!
//! let v = JsonValue::object([
//!     ("name", JsonValue::from("Taxi")),
//!     ("points", JsonValue::from(1500.0)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"Taxi","points":1500}"#);
//!
//! let back = JsonValue::parse(&text).unwrap();
//! assert_eq!(back.get("points").and_then(JsonValue::as_f64), Some(1500.0));
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Infinity).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// An error produced when parsing malformed JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    /// Non-finite values become [`JsonValue::Null`]: JSON cannot represent
    /// NaN or the infinities, and mapping them at construction keeps the
    /// writer and parser consistent (what is written as `null` parses back
    /// as `Null`).
    fn from(v: f64) -> Self {
        if v.is_finite() {
            JsonValue::Number(v)
        } else {
            JsonValue::Null
        }
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= (1u64 << 53) as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), like `serde_json::to_string`.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, like
    /// `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(v) => out.push_str(&format_number(*v)),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                write_newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                write_newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] describing the first malformed byte.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_whitespace();
        let value = p.parse_value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Formats a number the way `serde_json` does: integers without a decimal
/// point, everything else through the shortest round-trippable `f64` form.
fn format_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON cannot represent NaN/Infinity; null is the least-bad option.
        return "null".to_string();
    }
    // Negative zero must not take the integer fast path: `-0.0 as i64`
    // is `0`, which would silently drop the sign on a round-trip.
    if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 && (v != 0.0 || v.is_sign_positive()) {
        format!("{}", v as i64)
    } else {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts.  Malformed or adversarial
/// input must yield a [`JsonParseError`], not a stack overflow; the
/// workspace's own reports nest three levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number '{text}'")))?;
        // `str::parse` maps out-of-range literals like `1e999` to the
        // infinities; a parsed `Number` must always be finite.
        if !value.is_finite() {
            return Err(self.error(&format!("number '{text}' out of range")));
        }
        Ok(JsonValue::Number(value))
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's writers; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_like_serde_json() {
        let v = JsonValue::object([
            ("name", JsonValue::from("Test")),
            ("n", JsonValue::from(3usize)),
            ("ratio", JsonValue::from(0.25)),
            ("flag", JsonValue::from(true)),
            ("none", JsonValue::Null),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"Test","n":3,"ratio":0.25,"flag":true,"none":null}"#
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = JsonValue::object([("a", JsonValue::from(vec![1.0, 2.0]))]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_what_it_writes() {
        let v = JsonValue::object([
            ("s", JsonValue::from("quote \" backslash \\ tab \t")),
            ("nums", JsonValue::from(vec![0.5, -3.0, 1e9])),
            ("nested", JsonValue::object([("k", JsonValue::from(1.0))])),
        ]);
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"a": 2, "b": "x", "c": [1, 2], "d": false}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_usize), Some(2));
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("a"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1..2",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let bomb = "[".repeat(100_000);
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn number_formatting_preserves_integers() {
        assert_eq!(JsonValue::Number(1500.0).to_string(), "1500");
        assert_eq!(JsonValue::Number(-2.0).to_string(), "-2");
        assert_eq!(JsonValue::Number(0.125).to_string(), "0.125");
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn non_finite_numbers_are_consistent() {
        // Construction maps non-finite to Null, matching what the writer
        // emits and the parser returns.
        assert_eq!(JsonValue::from(f64::NAN), JsonValue::Null);
        assert_eq!(JsonValue::from(f64::INFINITY), JsonValue::Null);
        assert_eq!(JsonValue::from(f64::NEG_INFINITY), JsonValue::Null);
        let v = JsonValue::object([("x", JsonValue::from(f64::NAN))]);
        let text = v.to_string();
        assert_eq!(text, r#"{"x":null}"#);
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        // A directly constructed non-finite Number still writes as null.
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
        // Out-of-range literals are rejected instead of overflowing to
        // infinity.
        for bad in ["1e999", "-1e999", "1e400"] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(err.message.contains("out of range"), "{bad}: {err}");
        }
    }

    #[test]
    #[allow(clippy::excessive_precision)] // over-long literals are the point here
    fn high_precision_numbers_roundtrip_exactly() {
        let tricky = [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -0.0,
            9007199254740993.0, // 2^53 + 1 (rounds to 2^53, still exact as f64)
            1.7976931348623155e308,
            2.2250738585072011e-308,
            std::f64::consts::PI,
        ];
        for &v in &tricky {
            let text = JsonValue::Number(v).to_string();
            let back = JsonValue::parse(&text).unwrap();
            let got = back
                .as_f64()
                .unwrap_or_else(|| panic!("{text} not a number"));
            assert_eq!(got.to_bits(), v.to_bits(), "{v:?} → {text} → {got:?}");
        }
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let text = JsonValue::Number(-0.0).to_string();
        assert_eq!(text, "-0.0");
        let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
    }

    #[test]
    fn unicode_roundtrip() {
        let v = JsonValue::from("héllo ☃");
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
        assert_eq!(JsonValue::parse(r#""A☃""#).unwrap(), JsonValue::from("A☃"));
    }
}
