//! Piecewise line representations — the output of a simplification
//! algorithm (paper §3.1, "Piecewise line representation (T)").

use traj_geo::{DirectedSegment, Point};

/// One directed line segment of a piecewise line representation, together
/// with the inclusive range of original point indices it is responsible
/// for.
///
/// * For algorithms whose segment endpoints are original data points (DP,
///   OPW, BQS, FBQS, OPERB), `segment.start` / `segment.end` equal the
///   points at `first_index` / `last_index`... except when OPERB's
///   optimization 5 absorbs trailing points, in which case `last_index`
///   extends past the geometric end point.
/// * For OPERB-A, patch points are interpolated, so an endpoint may be a
///   synthetic point that is not part of the original trajectory
///   (`interpolated_start` / `interpolated_end` record this).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimplifiedSegment {
    /// The directed line segment of the representation.
    pub segment: DirectedSegment,
    /// Index of the first original point this segment is responsible for.
    pub first_index: usize,
    /// Index of the last original point this segment is responsible for
    /// (inclusive).
    pub last_index: usize,
    /// `true` when the start point is an interpolated patch point rather
    /// than an original data point.
    pub interpolated_start: bool,
    /// `true` when the end point is an interpolated patch point.
    pub interpolated_end: bool,
}

impl SimplifiedSegment {
    /// Creates a segment whose endpoints are original data points.
    pub fn new(segment: DirectedSegment, first_index: usize, last_index: usize) -> Self {
        debug_assert!(first_index <= last_index);
        Self {
            segment,
            first_index,
            last_index,
            interpolated_start: false,
            interpolated_end: false,
        }
    }

    /// Number of original points this segment is responsible for
    /// (inclusive of both boundary points, matching the paper's convention
    /// for the Z(k) distribution of Figure 17 where boundary points are
    /// counted for both adjacent segments).
    #[inline]
    pub fn point_count(&self) -> usize {
        self.last_index - self.first_index + 1
    }

    /// Distance from `p` to the infinite line supporting this segment — the
    /// `d(P, L)` of the paper's error definitions.
    #[inline]
    pub fn distance_to_line(&self, p: &Point) -> f64 {
        self.segment.distance_to_line(p)
    }

    /// Whether the segment represents only its own two endpoints — an
    /// *anomalous line segment* in the terminology of §5.1.
    #[inline]
    pub fn is_anomalous(&self) -> bool {
        self.last_index.saturating_sub(self.first_index) <= 1
    }
}

/// A piecewise line representation `T [L0, …, Lm]` of a trajectory with
/// `original_len` points.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimplifiedTrajectory {
    segments: Vec<SimplifiedSegment>,
    original_len: usize,
}

impl SimplifiedTrajectory {
    /// Creates a representation from its segments.
    pub fn new(segments: Vec<SimplifiedSegment>, original_len: usize) -> Self {
        Self {
            segments,
            original_len,
        }
    }

    /// The directed line segments, in order.
    #[inline]
    pub fn segments(&self) -> &[SimplifiedSegment] {
        &self.segments
    }

    /// Number of line segments `|T|` (the numerator of the paper's
    /// compression ratio).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of points of the original trajectory `|...T|`.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// `true` when the representation contains no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Compression ratio `|T| / |...T|` for this single trajectory (lower is
    /// better).  Multi-trajectory ratios are computed by `traj-metrics`.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        self.segments.len() as f64 / self.original_len as f64
    }

    /// The number of retained "shape points": the endpoints of the piecewise
    /// representation (`m + 1` for `m` continuous segments).
    pub fn num_shape_points(&self) -> usize {
        if self.segments.is_empty() {
            0
        } else {
            self.segments.len() + 1
        }
    }

    /// The polyline of segment endpoints (start of the first segment, then
    /// the end of every segment).
    pub fn shape_points(&self) -> Vec<Point> {
        let mut pts = Vec::with_capacity(self.num_shape_points());
        if let Some(first) = self.segments.first() {
            pts.push(first.segment.start);
        }
        for s in &self.segments {
            pts.push(s.segment.end);
        }
        pts
    }

    /// Segments whose responsibility range contains the original point index
    /// `i` (usually one, possibly two at shared boundaries).
    pub fn segments_covering(&self, i: usize) -> impl Iterator<Item = &SimplifiedSegment> {
        self.segments
            .iter()
            .filter(move |s| s.first_index <= i && i <= s.last_index)
    }

    /// Number of anomalous segments (§5.1): segments that represent only
    /// their own two endpoints.
    pub fn num_anomalous_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.is_anomalous()).count()
    }

    /// Checks the structural invariants of a well-formed piecewise line
    /// representation and returns a human-readable violation if any:
    ///
    /// 1. responsibility ranges start at 0, end at `original_len − 1`, and
    ///    each segment starts where the previous one's responsibility left
    ///    off (shared boundary index or the next index);
    /// 2. consecutive segments are geometrically continuous
    ///    (`L_i.Pe == L_{i+1}.Ps`);
    /// 3. every segment has a non-empty responsibility range.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return if self.original_len <= 1 {
                Ok(())
            } else {
                Err("no segments for a multi-point trajectory".into())
            };
        }
        let first = self.segments.first().expect("non-empty");
        let last = self.segments.last().expect("non-empty");
        if first.first_index != 0 {
            return Err(format!(
                "first segment starts at index {}, expected 0",
                first.first_index
            ));
        }
        if last.last_index + 1 != self.original_len {
            return Err(format!(
                "last segment ends at index {}, expected {}",
                last.last_index,
                self.original_len - 1
            ));
        }
        for (k, w) in self.segments.windows(2).enumerate() {
            let (a, b) = (&w[0], &w[1]);
            if b.first_index > a.last_index + 1 {
                return Err(format!(
                    "responsibility gap between segments {k} and {} ({} → {})",
                    k + 1,
                    a.last_index,
                    b.first_index
                ));
            }
            if b.first_index + 1 < a.first_index {
                return Err(format!("segments {k} and {} out of order", k + 1));
            }
            if !a.segment.end.approx_eq(&b.segment.start, 1e-6) {
                return Err(format!(
                    "segments {k} and {} are not continuous: {} vs {}",
                    k + 1,
                    a.segment.end,
                    b.segment.start
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64, a: usize, b: usize) -> SimplifiedSegment {
        SimplifiedSegment::new(
            DirectedSegment::new(Point::xy(x0, y0), Point::xy(x1, y1)),
            a,
            b,
        )
    }

    #[test]
    fn point_count_and_anomalous() {
        let s = seg(0.0, 0.0, 5.0, 0.0, 0, 5);
        assert_eq!(s.point_count(), 6);
        assert!(!s.is_anomalous());
        let a = seg(5.0, 0.0, 6.0, 0.0, 5, 6);
        assert_eq!(a.point_count(), 2);
        assert!(a.is_anomalous());
    }

    #[test]
    fn compression_ratio() {
        let st = SimplifiedTrajectory::new(
            vec![seg(0.0, 0.0, 5.0, 0.0, 0, 5), seg(5.0, 0.0, 9.0, 0.0, 5, 9)],
            10,
        );
        assert!((st.compression_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(st.num_segments(), 2);
        assert_eq!(st.original_len(), 10);
        assert_eq!(st.num_shape_points(), 3);
        assert_eq!(st.shape_points().len(), 3);
    }

    #[test]
    fn segments_covering_shared_boundary() {
        let st = SimplifiedTrajectory::new(
            vec![seg(0.0, 0.0, 5.0, 0.0, 0, 5), seg(5.0, 0.0, 9.0, 0.0, 5, 9)],
            10,
        );
        assert_eq!(st.segments_covering(3).count(), 1);
        assert_eq!(st.segments_covering(5).count(), 2);
        assert_eq!(st.segments_covering(9).count(), 1);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let st = SimplifiedTrajectory::new(
            vec![seg(0.0, 0.0, 5.0, 0.0, 0, 5), seg(5.0, 0.0, 9.0, 0.0, 5, 9)],
            10,
        );
        assert_eq!(st.validate(), Ok(()));
    }

    #[test]
    fn validate_detects_gap_and_discontinuity() {
        // Responsibility gap: 0..=4 then 6..=9.
        let st = SimplifiedTrajectory::new(
            vec![seg(0.0, 0.0, 4.0, 0.0, 0, 4), seg(4.0, 0.0, 9.0, 0.0, 6, 9)],
            10,
        );
        assert!(st.validate().unwrap_err().contains("gap"));

        // Geometric discontinuity.
        let st = SimplifiedTrajectory::new(
            vec![seg(0.0, 0.0, 4.0, 0.0, 0, 5), seg(4.5, 0.0, 9.0, 0.0, 5, 9)],
            10,
        );
        assert!(st.validate().unwrap_err().contains("continuous"));

        // Wrong start index.
        let st = SimplifiedTrajectory::new(vec![seg(0.0, 0.0, 4.0, 0.0, 1, 9)], 10);
        assert!(st.validate().unwrap_err().contains("expected 0"));

        // Wrong end index.
        let st = SimplifiedTrajectory::new(vec![seg(0.0, 0.0, 4.0, 0.0, 0, 8)], 10);
        assert!(st.validate().unwrap_err().contains("expected 9"));
    }

    #[test]
    fn validate_empty_cases() {
        assert_eq!(SimplifiedTrajectory::new(vec![], 1).validate(), Ok(()));
        assert!(SimplifiedTrajectory::new(vec![], 5).validate().is_err());
        assert!(SimplifiedTrajectory::default().is_empty());
    }

    #[test]
    fn anomalous_count() {
        let st = SimplifiedTrajectory::new(
            vec![
                seg(0.0, 0.0, 5.0, 0.0, 0, 5),
                seg(5.0, 0.0, 6.0, 0.0, 5, 6),
                seg(6.0, 0.0, 9.0, 0.0, 6, 9),
            ],
            10,
        );
        assert_eq!(st.num_anomalous_segments(), 1);
    }
}
