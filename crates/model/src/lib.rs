//! # traj-model
//!
//! The trajectory data model shared by every algorithm crate in the
//! `trajsimp` workspace, mirroring §3.1 of the OPERB paper:
//!
//! * [`Trajectory`] — a time-ordered sequence of data points
//!   (`...T [P0, …, Pn]`).
//! * [`SimplifiedTrajectory`] / [`SimplifiedSegment`] — a piecewise line
//!   representation `T [L0, …, Lm]` of a trajectory, where each directed
//!   line segment additionally records which range of original points it is
//!   responsible for (needed by the compression-ratio, average-error and
//!   segment-distribution metrics of §6).
//! * [`BatchSimplifier`] and [`StreamingSimplifier`] — the two algorithm
//!   interfaces: batch algorithms (DP, TD-TR) see the whole trajectory at
//!   once; online/one-pass algorithms (OPW, BQS, FBQS, OPERB, OPERB-A)
//!   consume points one at a time through the streaming interface and can be
//!   used in both modes through the [`StreamingAdapter`].
//! * [`CountingSource`] — an instrumented point source used by tests to
//!   verify the *one-pass* property (each point handed to the algorithm
//!   exactly once).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod simplified;
pub mod source;
pub mod traits;
pub mod trajectory;

pub use error::TrajectoryError;
pub use simplified::{SimplifiedSegment, SimplifiedTrajectory};
pub use source::CountingSource;
pub use traits::{BatchSimplifier, StreamingAdapter, StreamingSimplifier};
pub use trajectory::Trajectory;
