//! # traj-model
//!
//! The trajectory data model shared by every algorithm crate in the
//! `trajsimp` workspace, mirroring §3.1 of the OPERB paper:
//!
//! * [`Trajectory`] — a time-ordered sequence of data points
//!   (`...T [P0, …, Pn]`).
//! * [`SimplifiedTrajectory`] / [`SimplifiedSegment`] — a piecewise line
//!   representation `T [L0, …, Lm]` of a trajectory, where each directed
//!   line segment additionally records which range of original points it is
//!   responsible for (needed by the compression-ratio, average-error and
//!   segment-distribution metrics of §6).
//! * [`BatchSimplifier`] and [`StreamingSimplifier`] — the two algorithm
//!   interfaces: batch algorithms (DP, TD-TR) see the whole trajectory at
//!   once; online/one-pass algorithms (OPW, BQS, FBQS, OPERB, OPERB-A)
//!   consume points one at a time through the streaming interface and can be
//!   used in both modes through the [`StreamingAdapter`].
//! * [`Simplifier`] — the unified, thread-safe interface over all of the
//!   above (blanket-implemented for every `Send + Sync` batch simplifier),
//!   which is what the parallel fleet pipeline (`traj-pipeline`) consumes.
//! * [`CountingSource`] — an instrumented point source used by tests to
//!   verify the *one-pass* property (each point handed to the algorithm
//!   exactly once).
//! * [`json`] — a dependency-free JSON reader/writer used by the
//!   experiment harness (this workspace builds offline, without serde).
//! * [`codec`] — a compact binary encoding of piecewise representations
//!   (quantized delta/varint), the on-disk format of the `traj-store`
//!   storage engine.
//!
//! ## Example
//!
//! A trajectory, its single-segment piecewise representation, and the
//! bookkeeping the metrics rely on:
//!
//! ```
//! use traj_geo::DirectedSegment;
//! use traj_model::{SimplifiedSegment, SimplifiedTrajectory, Trajectory};
//!
//! // Four GPS fixes on an almost-straight path (x, y in meters).
//! let trajectory = Trajectory::from_xy(&[
//!     (0.0, 0.0), (10.0, 0.4), (20.0, -0.3), (30.0, 0.1),
//! ]);
//! assert_eq!(trajectory.len(), 4);
//!
//! // Represent all of it by one directed line segment P0 → P3 that is
//! // "responsible" for the original points 0..=3.
//! let segment = SimplifiedSegment::new(
//!     DirectedSegment::new(trajectory.first(), trajectory.last()),
//!     0,
//!     3,
//! );
//! let simplified = SimplifiedTrajectory::new(vec![segment], trajectory.len());
//!
//! assert_eq!(simplified.validate(), Ok(()));
//! assert_eq!(simplified.num_segments(), 1);
//! assert_eq!(simplified.compression_ratio(), 0.25); // 1 segment / 4 points
//!
//! // Every original point stays close to the representation.
//! for p in trajectory.points() {
//!     assert!(simplified.segments()[0].distance_to_line(p) < 0.5);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod json;
pub mod simplified;
pub mod source;
pub mod traits;
pub mod trajectory;

pub use codec::{BlockFormat, CodecError, DecodeArena, SegmentCodec};
pub use error::TrajectoryError;
pub use simplified::{SimplifiedSegment, SimplifiedTrajectory};
pub use source::CountingSource;
pub use traits::{
    BatchSimplifier, BoxedStreamingSimplifier, Simplifier, StreamingAdapter, StreamingFactory,
    StreamingSimplifier,
};
pub use trajectory::Trajectory;
