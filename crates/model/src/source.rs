//! Instrumented point sources used to verify the one-pass property.
//!
//! The defining property of OPERB / OPERB-A (and of FBQS) is that each data
//! point of the trajectory is *read once and only once* during
//! simplification.  [`CountingSource`] wraps a trajectory and counts how
//! many times each point is handed out, so tests can assert the one-pass
//! property mechanically rather than by inspection.

use traj_geo::Point;

/// A point source that records how many times each point has been read.
#[derive(Debug, Clone)]
pub struct CountingSource {
    points: Vec<Point>,
    reads: Vec<usize>,
    cursor: usize,
}

impl CountingSource {
    /// Creates a source over the given points.
    pub fn new(points: Vec<Point>) -> Self {
        let reads = vec![0; points.len()];
        Self {
            points,
            reads,
            cursor: 0,
        }
    }

    /// Total number of points in the source.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the source holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Reads the next point in order (None when exhausted), incrementing its
    /// read counter.
    pub fn next_point(&mut self) -> Option<Point> {
        if self.cursor >= self.points.len() {
            return None;
        }
        let i = self.cursor;
        self.cursor += 1;
        self.reads[i] += 1;
        Some(self.points[i])
    }

    /// Reads the point at an arbitrary index (used to emulate algorithms
    /// that revisit points, e.g. DP), incrementing its read counter.
    pub fn read_at(&mut self, index: usize) -> Point {
        self.reads[index] += 1;
        self.points[index]
    }

    /// Per-point read counts.
    pub fn reads(&self) -> &[usize] {
        &self.reads
    }

    /// Total number of point reads performed so far.
    pub fn total_reads(&self) -> usize {
        self.reads.iter().sum()
    }

    /// `true` when every point has been read exactly once — the one-pass
    /// property.
    pub fn is_single_pass(&self) -> bool {
        self.reads.iter().all(|&c| c == 1)
    }

    /// `true` when every point has been read at least once.
    pub fn is_exhaustive(&self) -> bool {
        self.reads.iter().all(|&c| c >= 1)
    }

    /// Resets the read counters and the sequential cursor.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.reads.iter_mut().for_each(|c| *c = 0);
    }
}

impl Iterator for CountingSource {
    type Item = Point;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_point()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.points.len() - self.cursor;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64, 0.0, i as f64))
            .collect()
    }

    #[test]
    fn sequential_reads_are_single_pass() {
        let mut src = CountingSource::new(pts(5));
        assert_eq!(src.len(), 5);
        assert!(!src.is_empty());
        let mut count = 0;
        while src.next_point().is_some() {
            count += 1;
        }
        assert_eq!(count, 5);
        assert!(src.is_single_pass());
        assert!(src.is_exhaustive());
        assert_eq!(src.total_reads(), 5);
        assert!(src.next_point().is_none());
    }

    #[test]
    fn random_access_breaks_single_pass() {
        let mut src = CountingSource::new(pts(3));
        let _ = src.read_at(1);
        let _ = src.read_at(1);
        assert!(!src.is_single_pass());
        assert!(!src.is_exhaustive());
        assert_eq!(src.reads(), &[0, 2, 0]);
        assert_eq!(src.total_reads(), 2);
    }

    #[test]
    fn reset_clears_counters() {
        let mut src = CountingSource::new(pts(2));
        let _ = src.next_point();
        src.reset();
        assert_eq!(src.total_reads(), 0);
        assert_eq!(src.next_point().unwrap().x, 0.0);
    }

    #[test]
    fn iterator_interface() {
        let src = CountingSource::new(pts(4));
        assert_eq!(src.size_hint(), (4, Some(4)));
        let collected: Vec<Point> = src.collect();
        assert_eq!(collected.len(), 4);
    }

    #[test]
    fn empty_source() {
        let mut src = CountingSource::new(vec![]);
        assert!(src.is_empty());
        assert!(src.next_point().is_none());
        assert!(src.is_single_pass()); // vacuously true
    }
}
