//! Property-based tests of the trajectory model invariants.

// Quarantined: needs the external `proptest` crate, which is not
// vendored in this offline workspace (see CHANGES.md).  Enable with
// `--features proptest` after vendoring the dependency.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use traj_geo::{DirectedSegment, Point};
use traj_model::{CountingSource, SimplifiedSegment, SimplifiedTrajectory, Trajectory};

fn monotone_trajectory(max_len: usize) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec(
        (-1.0e4..1.0e4f64, -1.0e4..1.0e4f64, 0.01f64..10.0),
        2..max_len,
    )
    .prop_map(|tuples| {
        let mut t = 0.0;
        let points = tuples
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                Point::new(x, y, t)
            })
            .collect();
        Trajectory::new(points).expect("timestamps strictly increase by construction")
    })
}

proptest! {
    #[test]
    fn valid_trajectories_pass_validation(traj in monotone_trajectory(100)) {
        // Re-validating the points must succeed and preserve everything.
        let again = Trajectory::new(traj.points().to_vec()).expect("still valid");
        prop_assert_eq!(&again, &traj);
        prop_assert!(traj.duration() >= 0.0);
        prop_assert!(traj.path_length() >= 0.0);
        prop_assert!(traj.mean_sampling_interval() > 0.0);
    }

    #[test]
    fn shuffled_timestamps_are_rejected(traj in monotone_trajectory(30)) {
        let mut points = traj.points().to_vec();
        // Swap two adjacent timestamps to violate monotonicity.
        if points.len() >= 2 {
            let t0 = points[0].t;
            points[0].t = points[1].t;
            points[1].t = t0;
            prop_assert!(Trajectory::new(points).is_err());
        }
    }

    #[test]
    fn slices_preserve_points(traj in monotone_trajectory(60), split in 0usize..59) {
        let last = traj.len() - 1;
        let mid = split.min(last);
        let left = traj.slice(0, mid);
        let right = traj.slice(mid, last);
        prop_assert_eq!(left.len() + right.len(), traj.len() + 1);
        prop_assert_eq!(left.last(), right.first());
        prop_assert_eq!(left.first(), traj.first());
        prop_assert_eq!(right.last(), traj.last());
    }

    #[test]
    fn single_segment_representation_validates(traj in monotone_trajectory(80)) {
        let seg = SimplifiedSegment::new(
            DirectedSegment::new(traj.first(), traj.last()),
            0,
            traj.len() - 1,
        );
        let simp = SimplifiedTrajectory::new(vec![seg], traj.len());
        prop_assert_eq!(simp.validate(), Ok(()));
        prop_assert!(simp.compression_ratio() <= 1.0);
        prop_assert_eq!(simp.num_shape_points(), 2);
        // Every index is covered.
        for i in 0..traj.len() {
            prop_assert_eq!(simp.segments_covering(i).count(), 1);
        }
    }

    #[test]
    fn counting_source_sees_every_point_once(traj in monotone_trajectory(80)) {
        let mut src = CountingSource::new(traj.points().to_vec());
        let mut n = 0;
        while src.next_point().is_some() {
            n += 1;
        }
        prop_assert_eq!(n, traj.len());
        prop_assert!(src.is_single_pass());
        prop_assert!(src.is_exhaustive());
    }
}
