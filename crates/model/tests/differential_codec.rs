//! Differential tests between the two block formats.
//!
//! The frame-of-reference (FoR) format is an *alternative encoding* of
//! the exact same quantized representation the varint format stores, so
//! the two decoders must agree **point-for-point** on every trajectory:
//! same segments, same responsibility ranges, same interpolation flags,
//! same quantization error.  These tests prove that equivalence over tens
//! of thousands of seeded fleets spanning the ζ regimes the simplifiers
//! produce, then turn the existing adversarial corpus (random bytes,
//! bit-flipped encodings, truncations, allocation bombs) against the FoR
//! decoder: no panic, no over-allocation, corruption detected.

use traj_data::rng::{Rng, SmallRng};
use traj_geo::{DirectedSegment, Point};
use traj_model::codec::{put_varint, BlockFormat, DecodeArena, SegmentCodec};
use traj_model::{SimplifiedSegment, SimplifiedTrajectory};

/// The ζ regimes under test: tight bounds produce dense short segments
/// with tiny deltas, loose bounds produce long sparse segments with large
/// deltas and wide responsibility spans — opposite ends of the FoR bit
/// width spectrum.
const ZETAS: [f64; 4] = [0.5, 5.0, 50.0, 500.0];

/// A seeded fleet member: segment geometry scaled by ζ (a simplifier
/// emits segments whose length and span grow with the error bound), with
/// discontinuities and interpolation flags sprinkled in.
fn zeta_trajectory(zeta: f64, segments: usize, seed: u64) -> SimplifiedTrajectory {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(segments);
    let mut prev = Point::new(
        rng.gen_range(-1e4..1e4),
        rng.gen_range(-1e4..1e4),
        rng.gen_range(0.0..1e6),
    );
    let mut index = 0usize;
    for _ in 0..segments {
        let next = Point::new(
            prev.x + rng.gen_range(-40.0..40.0) * zeta,
            prev.y + rng.gen_range(-40.0..40.0) * zeta,
            prev.t + rng.gen_range(1.0..30.0) * (1.0 + zeta),
        );
        let span = rng.gen_range(1..4 + (zeta as usize).min(200));
        let mut s = SimplifiedSegment::new(DirectedSegment::new(prev, next), index, index + span);
        s.interpolated_start = rng.gen_bool(0.1);
        s.interpolated_end = rng.gen_bool(0.1);
        out.push(s);
        prev = if rng.gen_bool(0.15) {
            // Discontinuity, like OPERB emits around anomalies.
            Point::new(
                next.x + rng.gen_range(-5.0..5.0) * zeta,
                next.y + rng.gen_range(-5.0..5.0) * zeta,
                next.t,
            )
        } else {
            next
        };
        index += span;
    }
    SimplifiedTrajectory::new(out, index + 1)
}

/// The differential oracle: both formats decode to the *same* trajectory,
/// through both the owned and the arena decode paths.
fn assert_formats_agree(codec: &SegmentCodec, st: &SimplifiedTrajectory, context: &str) {
    let varint = codec
        .encode_block(BlockFormat::Varint, st)
        .expect("varint encode");
    let packed = codec
        .encode_block(BlockFormat::ForFixed, st)
        .expect("for encode");
    let from_varint = codec
        .decode_block(BlockFormat::Varint, &varint)
        .expect("varint decode");
    let from_packed = codec
        .decode_block(BlockFormat::ForFixed, &packed)
        .expect("for decode");
    assert_eq!(from_varint, from_packed, "{context}: formats disagree");

    let mut arena = DecodeArena::new();
    codec
        .decode_block_into(BlockFormat::ForFixed, &packed, &mut arena)
        .expect("arena decode");
    assert_eq!(
        arena.segments(),
        from_varint.segments(),
        "{context}: arena decode disagrees"
    );
    assert_eq!(arena.original_len(), from_varint.original_len());
}

#[test]
fn ten_thousand_seeded_fleets_decode_identically_across_formats() {
    let codec = SegmentCodec::default();
    let mut cases = 0usize;
    for (zi, &zeta) in ZETAS.iter().enumerate() {
        for case in 0..2_600u64 {
            let seed = 0x5EED_0000 + (zi as u64) * 1_000_000 + case;
            let segments = (case % 90) as usize; // includes the empty block
            let st = zeta_trajectory(zeta, segments, seed);
            assert_formats_agree(&codec, &st, &format!("zeta {zeta} case {case}"));
            cases += 1;
        }
    }
    assert!(cases >= 10_000, "only {cases} differential cases");
}

#[test]
fn coarse_and_fine_resolutions_agree_too() {
    // The quantization grid is orthogonal to the packing format: whatever
    // the codec resolution, both formats must reproduce the same grid
    // points.  (Re-encode once so the fixture is exactly representable.)
    for (sp, t) in [(1.0, 1.0), (0.001, 0.0001), (10.0, 60.0)] {
        let codec = SegmentCodec::new(sp, t);
        for seed in 0..200u64 {
            let raw = zeta_trajectory(20.0, 40, 0xC0A & seed | (seed << 8));
            let canonical = codec
                .decode(&codec.encode(&raw).expect("encode"))
                .expect("canonicalize");
            assert_formats_agree(&codec, &canonical, &format!("resolution ({sp},{t}) {seed}"));
        }
    }
}

// ─────────────────── adversarial corpus vs the FoR decoder ───────────────────

/// Accepted output must be structurally sound and must not have allocated
/// far beyond what the input could describe: every FoR segment costs at
/// least its one flag byte, so segments ≤ input length.
fn assert_sound_for(codec: &SegmentCodec, bytes: &[u8], context: &str) {
    let mut arena = DecodeArena::new();
    match codec.decode_block_into(BlockFormat::ForFixed, bytes, &mut arena) {
        Ok(()) => {
            assert!(
                arena.segments().len() <= bytes.len(),
                "{context}: {} segments decoded from {} bytes — over-allocation",
                arena.segments().len(),
                bytes.len()
            );
            for s in arena.segments() {
                assert!(
                    s.first_index <= s.last_index,
                    "{context}: inverted responsibility range"
                );
            }
        }
        Err(_) => {
            assert!(
                arena.segments().is_empty(),
                "{context}: failed decode left data in the arena"
            );
        }
    }
}

/// A valid FoR encoding of a plausible multi-segment block.
fn sample_for_encoding(codec: &SegmentCodec, segments: usize, seed: u64) -> Vec<u8> {
    let st = zeta_trajectory(8.0, segments, seed);
    codec
        .encode_block(BlockFormat::ForFixed, &st)
        .expect("sample FoR encoding")
}

#[test]
fn random_byte_strings_never_panic_the_for_decoder() {
    let codec = SegmentCodec::default();
    let mut rng = SmallRng::seed_from_u64(0xF0_2026);
    let mut cases = 0usize;
    for _ in 0..10_000 {
        let len = rng.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert_sound_for(&codec, &bytes, "random bytes");
        cases += 1;
    }
    for fill in [0x80u8, 0xFF, 0x00, 0x7F, 0x40] {
        for len in 0..64usize {
            assert_sound_for(&codec, &vec![fill; len], "biased bytes");
            cases += 1;
        }
    }
    assert!(cases >= 10_000);
}

#[test]
fn bit_flipped_for_encodings_never_panic() {
    let codec = SegmentCodec::default();
    let mut cases = 0usize;
    for seed in 0..6u64 {
        let bytes = sample_for_encoding(&codec, 24, 2000 + seed);
        codec
            .decode_block(BlockFormat::ForFixed, &bytes)
            .expect("unmutated encoding decodes");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                assert_sound_for(&codec, &mutated, "single bit flip");
                cases += 1;
            }
        }
    }
    assert!(cases >= 10_000, "only {cases} flip cases");
}

#[test]
fn every_truncation_of_a_for_encoding_errors_cleanly() {
    let codec = SegmentCodec::default();
    let bytes = sample_for_encoding(&codec, 24, 4242);
    for cut in 0..bytes.len() {
        assert!(
            codec
                .decode_block(BlockFormat::ForFixed, &bytes[..cut])
                .is_err(),
            "truncation at {cut}/{} decoded",
            bytes.len()
        );
    }
    // Trailing garbage is corruption, not slack.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(codec
        .decode_block(BlockFormat::ForFixed, &extended)
        .is_err());
}

#[test]
fn for_allocation_bombs_are_rejected_before_allocating() {
    let codec = SegmentCodec::default();
    // Tiny inputs claiming huge segment counts: the claimed count requires
    // one flag byte per segment, so the length check rejects them before
    // any proportional allocation happens.
    for claimed in [u64::MAX, 1 << 62, 1 << 48, 1 << 32, 1 << 20] {
        let mut bomb = Vec::new();
        put_varint(&mut bomb, 100); // original_len
        put_varint(&mut bomb, claimed); // num_segments
        bomb.extend_from_slice(&[0u8; 32]);
        assert!(
            codec.decode_block(BlockFormat::ForFixed, &bomb).is_err(),
            "bomb {claimed} accepted"
        );
    }
}

#[test]
fn multi_mutation_and_splice_never_panics_the_for_decoder() {
    let codec = SegmentCodec::default();
    let mut rng = SmallRng::seed_from_u64(0xDEAD_2026);
    let base = sample_for_encoding(&codec, 32, 77);
    for _ in 0..10_000 {
        let mut mutated = base.clone();
        for _ in 0..rng.gen_range(1..9u32) {
            let at = rng.gen_range(0..mutated.len());
            mutated[at] = rng.next_u64() as u8;
        }
        if rng.gen_bool(0.3) {
            let cut = rng.gen_range(0..mutated.len());
            mutated.truncate(cut);
        } else if rng.gen_bool(0.2) {
            for _ in 0..rng.gen_range(1..16u32) {
                mutated.push(rng.next_u64() as u8);
            }
        }
        assert_sound_for(&codec, &mutated, "multi mutation");
    }
}

#[test]
fn surviving_mutants_reencode_identically_in_both_formats() {
    // A mutated FoR block that still decodes is a *valid* representation;
    // encoding it in either format and decoding again must agree — the
    // differential property holds even for decoder-accepted garbage.
    let codec = SegmentCodec::default();
    let mut rng = SmallRng::seed_from_u64(31337);
    let base = sample_for_encoding(&codec, 16, 9);
    let mut survivors = 0usize;
    for _ in 0..4_000 {
        let mut mutated = base.clone();
        let at = rng.gen_range(0..mutated.len());
        mutated[at] ^= 1 << rng.gen_range(0..8u32);
        if let Ok(decoded) = codec.decode_block(BlockFormat::ForFixed, &mutated) {
            survivors += 1;
            assert_formats_agree(&codec, &decoded, "survivor");
        }
    }
    assert!(survivors > 0, "no mutated input survived — fuzz too weak?");
}
