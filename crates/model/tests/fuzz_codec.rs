//! Fuzz-style robustness tests for the block codec.
//!
//! `SegmentCodec::decode` runs on untrusted bytes: the storage engine
//! feeds it whatever is on disk and the serving layer keeps a process
//! alive across millions of decodes.  These tests feed it tens of
//! thousands of adversarial inputs — seeded-random byte strings, bit- and
//! byte-flipped valid encodings, truncations, and allocation bombs — and
//! assert the one contract that matters: **decoding never panics and
//! never over-allocates; it returns either a structured error or a
//! well-formed representation.**  (A panic anywhere in here fails the
//! test; release-mode wrap-arounds are caught by the validity checks.)

use traj_data::rng::{Rng, SmallRng};
use traj_geo::{DirectedSegment, Point};
use traj_model::codec::{put_varint, SegmentCodec};
use traj_model::{SimplifiedSegment, SimplifiedTrajectory};

/// Decoded output must be structurally sound and, in particular, must not
/// have allocated far beyond what the input could possibly describe
/// (every segment costs ≥ 5 encoded bytes).
fn assert_sound(codec: &SegmentCodec, bytes: &[u8], context: &str) {
    if let Ok(decoded) = codec.decode(bytes) {
        assert!(
            decoded.num_segments() <= bytes.len(),
            "{context}: {} segments decoded from {} bytes — over-allocation",
            decoded.num_segments(),
            bytes.len()
        );
        for s in decoded.segments() {
            assert!(
                s.first_index <= s.last_index,
                "{context}: inverted responsibility range"
            );
        }
    }
}

/// A plausible multi-segment representation to mutate.
fn sample_encoding(codec: &SegmentCodec, segments: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(segments);
    let mut prev = Point::new(0.0, 0.0, 0.0);
    let mut index = 0usize;
    for _ in 0..segments {
        let next = Point::new(
            prev.x + rng.gen_range(-200.0..200.0),
            prev.y + rng.gen_range(-200.0..200.0),
            prev.t + rng.gen_range(1.0..120.0),
        );
        let span = rng.gen_range(1..12usize);
        let mut s = SimplifiedSegment::new(DirectedSegment::new(prev, next), index, index + span);
        s.interpolated_start = rng.gen_bool(0.1);
        s.interpolated_end = rng.gen_bool(0.1);
        out.push(s);
        // Occasionally a discontinuity, like OPERB emits around anomalies.
        prev = if rng.gen_bool(0.15) {
            Point::new(
                next.x + rng.gen_range(-50.0..50.0),
                next.y + rng.gen_range(-50.0..50.0),
                next.t,
            )
        } else {
            next
        };
        index += span;
    }
    let st = SimplifiedTrajectory::new(out, index + 1);
    codec.encode(&st).expect("sample encoding")
}

#[test]
fn random_byte_strings_never_panic_or_overallocate() {
    let codec = SegmentCodec::default();
    let mut rng = SmallRng::seed_from_u64(0xF022_2026);
    let mut cases = 0usize;
    for _ in 0..10_000 {
        let len = rng.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert_sound(&codec, &bytes, "random bytes");
        cases += 1;
    }
    // Biased streams hit different decoder paths: long varint runs (high
    // bit set) and long runs of zero.
    for fill in [0x80u8, 0xFF, 0x00, 0x7F] {
        for len in 0..64usize {
            let bytes = vec![fill; len];
            assert_sound(&codec, &bytes, "biased bytes");
            cases += 1;
        }
    }
    assert!(cases >= 10_000);
}

#[test]
fn bit_flipped_valid_encodings_never_panic() {
    let codec = SegmentCodec::default();
    let mut cases = 0usize;
    for seed in 0..6u64 {
        let bytes = sample_encoding(&codec, 24, 1000 + seed);
        codec.decode(&bytes).expect("unmutated encoding decodes");
        // Every single-bit flip of the encoding.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                assert_sound(&codec, &mutated, "single bit flip");
                cases += 1;
            }
        }
    }
    assert!(cases >= 10_000, "only {cases} flip cases");
}

#[test]
fn multi_mutation_and_splice_never_panics() {
    let codec = SegmentCodec::default();
    let mut rng = SmallRng::seed_from_u64(0xDEAD_BEEF);
    let base = sample_encoding(&codec, 32, 77);
    for _ in 0..10_000 {
        let mut mutated = base.clone();
        // 1–8 random byte mutations…
        for _ in 0..rng.gen_range(1..9u32) {
            let at = rng.gen_range(0..mutated.len());
            mutated[at] = rng.next_u64() as u8;
        }
        // …sometimes truncated or extended.
        if rng.gen_bool(0.3) {
            let cut = rng.gen_range(0..mutated.len());
            mutated.truncate(cut);
        } else if rng.gen_bool(0.2) {
            for _ in 0..rng.gen_range(1..16u32) {
                mutated.push(rng.next_u64() as u8);
            }
        }
        assert_sound(&codec, &mutated, "multi mutation");
    }
}

#[test]
fn every_truncation_of_a_valid_encoding_errors_cleanly() {
    let codec = SegmentCodec::default();
    let bytes = sample_encoding(&codec, 24, 4242);
    for cut in 0..bytes.len() {
        // A strict prefix can never be valid: the segment count promises
        // more data than remains.
        assert!(
            codec.decode(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} decoded",
            bytes.len()
        );
    }
}

#[test]
fn allocation_bombs_are_rejected_before_allocating() {
    let codec = SegmentCodec::default();
    // Tiny inputs claiming huge segment counts must be rejected up front —
    // a Vec::with_capacity on the claimed count would abort the process.
    for claimed in [u64::MAX, 1 << 62, 1 << 48, 1 << 32, 1 << 20] {
        let mut bomb = Vec::new();
        put_varint(&mut bomb, 100); // original_len
        put_varint(&mut bomb, claimed); // num_segments
        bomb.extend_from_slice(&[0u8; 32]);
        assert!(codec.decode(&bomb).is_err(), "bomb {claimed} accepted");
    }
    // Same through the resolution-configured constructor.
    let coarse = SegmentCodec::new(1.0, 1.0);
    let mut bomb = Vec::new();
    put_varint(&mut bomb, 1);
    put_varint(&mut bomb, u64::MAX);
    assert!(coarse.decode(&bomb).is_err());
}

#[test]
fn decode_reencode_of_survivors_is_stable() {
    // Mutated inputs that still decode must round-trip: decode → encode →
    // decode is identity (the store re-serializes what it accepted).
    let codec = SegmentCodec::default();
    let mut rng = SmallRng::seed_from_u64(31337);
    let base = sample_encoding(&codec, 16, 9);
    let mut survivors = 0usize;
    for _ in 0..4_000 {
        let mut mutated = base.clone();
        let at = rng.gen_range(0..mutated.len());
        mutated[at] ^= 1 << rng.gen_range(0..8u32);
        if let Ok(decoded) = codec.decode(&mutated) {
            survivors += 1;
            let reencoded = codec.encode(&decoded).expect("re-encode survivor");
            let twice = codec.decode(&reencoded).expect("decode re-encoded");
            assert_eq!(twice, decoded);
        }
    }
    // Single-bit flips often land in coordinate deltas and stay valid.
    assert!(survivors > 0, "no mutated input survived — fuzz too weak?");
}
