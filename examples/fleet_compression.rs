//! Fleet compression: the vehicle-to-cloud scenario that motivates the
//! paper's introduction.
//!
//! A fleet of taxis samples its position every 60 seconds and uploads the
//! trajectories to a server.  This example generates a synthetic fleet,
//! compresses it with every implemented algorithm and reports, per
//! algorithm: compression ratio, average error, maximum error and
//! throughput — i.e. a miniature version of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example fleet_compression
//! ```

use trajsimp::baselines::{Bqs, DouglasPeucker, Fbqs, OpeningWindow};
use trajsimp::data::{DatasetGenerator, DatasetKind};
use trajsimp::metrics::evaluate_batch;
use trajsimp::model::BatchSimplifier;
use trajsimp::operb::{Operb, OperbA};

fn main() {
    let zeta = 40.0; // meters, the paper's default for most experiments
    let fleet_size = 8;
    let points_per_trajectory = 1_500;

    println!("generating a fleet of {fleet_size} taxi trajectories ({points_per_trajectory} points each) …");
    let fleet = DatasetGenerator::for_kind(DatasetKind::Taxi, 42)
        .generate_sized(fleet_size, points_per_trajectory);
    let total_points: usize = fleet.iter().map(|t| t.len()).sum();
    println!("total: {total_points} GPS fixes, ζ = {zeta} m\n");

    let algorithms: Vec<Box<dyn BatchSimplifier>> = vec![
        Box::new(DouglasPeucker::new()),
        Box::new(OpeningWindow::new()),
        Box::new(Bqs::new()),
        Box::new(Fbqs::new()),
        Box::new(Operb::raw()),
        Box::new(Operb::new()),
        Box::new(OperbA::new()),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "algorithm", "segments", "compr.ratio", "avg err (m)", "max err (m)", "points/sec"
    );
    for algo in &algorithms {
        let result = evaluate_batch(algo.as_ref(), &fleet, zeta, 3);
        println!(
            "{:<12} {:>10} {:>12.4} {:>12.2} {:>12.2} {:>14.0}",
            result.algorithm,
            result.total_segments,
            result.compression_ratio,
            result.average_error,
            result.max_error,
            result.throughput_points_per_sec(),
        );
        assert!(
            result.error_bounded(),
            "{} violated the error bound!",
            result.algorithm
        );
    }

    println!(
        "\nevery algorithm stayed within ζ = {zeta} m; lower compression ratio and higher \
         points/sec are better."
    );
}
