//! Online simplification on a resource-constrained sensor.
//!
//! OPERB's selling point is that it is *one-pass*: a GPS logger can push
//! every fix into the simplifier the moment it is sampled, transmit a line
//! segment as soon as it is finalized, and never buffer the raw trajectory.
//! This example simulates that loop with a service-car profile (3–5 s
//! sampling) and shows the segments being emitted while the "vehicle" is
//! still driving, together with the bounded state the algorithm keeps.
//!
//! ```text
//! cargo run --release --example streaming_sensor
//! ```

use trajsimp::data::{DatasetGenerator, DatasetKind};
use trajsimp::model::StreamingSimplifier;
use trajsimp::operb::OperbAStream;

fn main() {
    let zeta = 25.0;
    let trajectory =
        DatasetGenerator::for_kind(DatasetKind::SerCar, 7).generate_trajectory(0, 2_000);

    println!(
        "simulating a sensor sampling {} fixes (ζ = {zeta} m) …\n",
        trajectory.len()
    );

    let mut simplifier = OperbAStream::new(zeta);
    let mut emitted = Vec::new();
    let mut transmitted_segments = 0usize;

    for (i, &fix) in trajectory.points().iter().enumerate() {
        // The sensor hands each fix to the simplifier exactly once.
        simplifier.push(fix, &mut emitted);

        // Whatever got finalized can be transmitted immediately and dropped
        // from memory.
        for seg in emitted.drain(..) {
            transmitted_segments += 1;
            if transmitted_segments <= 10 || transmitted_segments.is_multiple_of(25) {
                println!(
                    "t = {:7.0}s  fix #{i:>5}  → transmit segment #{:<4} ({:8.1}, {:8.1}) → ({:8.1}, {:8.1}) covering {} fixes",
                    fix.t,
                    transmitted_segments,
                    seg.segment.start.x,
                    seg.segment.start.y,
                    seg.segment.end.x,
                    seg.segment.end.y,
                    seg.point_count(),
                );
            }
        }
    }

    // End of the trip: flush the trailing segment(s).
    simplifier.finish(&mut emitted);
    transmitted_segments += emitted.len();

    let stats = simplifier.stats();
    println!("\ntrip finished:");
    println!("  raw fixes            : {}", trajectory.len());
    println!("  transmitted segments : {transmitted_segments}");
    println!(
        "  compression ratio    : {:.4}",
        transmitted_segments as f64 / trajectory.len() as f64
    );
    println!(
        "  anomalous segments   : {} ({} patched away)",
        stats.anomalous_segments, stats.patch_points_added
    );
    println!(
        "  bandwidth saving     : {:.1}×",
        trajectory.len() as f64 / transmitted_segments as f64
    );
}
