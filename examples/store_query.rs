//! The storage engine end to end: compress a fleet into a `traj-store`,
//! persist it, reopen it and answer queries from the compressed
//! representation — decoding only the blocks each query needs.
//!
//! ```text
//! cargo run --release --example store_query
//! ```

use trajsimp::data::{DatasetGenerator, DatasetKind};
use trajsimp::geo::BoundingBox;
use trajsimp::model::Trajectory;
use trajsimp::pipeline::{DeviceId, FleetAlgorithm, PipelineConfig};
use trajsimp::store::{compress_fleet_into_store, TrajStore};

fn main() {
    let zeta = 30.0; // meters
    let devices = 24;
    let points = 400;

    // ── 1. Compress a fleet straight into the store ──────────────────────
    println!(
        "compressing {devices} taxi streams ({points} points each, ζ = {zeta} m) into the store …"
    );
    let generator = DatasetGenerator::for_kind(DatasetKind::Taxi, 7);
    let fleet: Vec<(DeviceId, Trajectory)> = (0..devices)
        .map(|i| (i as DeviceId, generator.generate_trajectory(i, points)))
        .collect();
    let algorithm = FleetAlgorithm::by_name("operb").expect("known algorithm");
    let config = PipelineConfig::new(zeta);
    let mut store = TrajStore::default();
    let (_, ingested) = compress_fleet_into_store(&fleet, &config, &algorithm, &mut store)
        .expect("fleet compresses cleanly");
    let stats = store.stats();
    println!(
        "  {} streams → {} blocks, {} segments, {:.2} bytes/point ({:.1}x smaller than raw)\n",
        ingested,
        stats.blocks,
        stats.segments,
        stats.bytes_per_point(),
        stats.compression_factor()
    );

    // ── 2. Persist and reopen ────────────────────────────────────────────
    let dir = std::env::temp_dir().join("trajsimp-store-example");
    store.save(&dir).expect("store persists");
    let store = TrajStore::open(&dir).expect("store reopens");
    println!(
        "persisted to {} and reopened (index rebuilt from the log)\n",
        dir.display()
    );

    // ── 3. Time-range slice for one device ───────────────────────────────
    let device = 5;
    let duration = fleet[device as usize].1.duration();
    let slice = store.time_slice(device, duration * 0.25, duration * 0.5);
    println!(
        "time slice of device {device} (middle quarter): {} segments, decoded {}/{} blocks (skip ratio {:.0}%)",
        slice.segments.len(),
        slice.stats.blocks_decoded,
        slice.stats.blocks_in_scope,
        slice.stats.skip_ratio() * 100.0
    );

    // ── 4. Spatial window query across the fleet ─────────────────────────
    let centre = fleet[device as usize].1.point(points / 2);
    let window = BoundingBox {
        min_x: centre.x - 400.0,
        min_y: centre.y - 400.0,
        max_x: centre.x + 400.0,
        max_y: centre.y + 400.0,
    };
    let q = store.window_query(&window, None);
    println!(
        "window query (800 m × 800 m): {} devices matched, decoded {}/{} blocks (skip ratio {:.0}%)",
        q.matches.len(),
        q.stats.blocks_decoded,
        q.stats.blocks_in_scope,
        q.stats.skip_ratio() * 100.0
    );
    assert!(
        q.stats.blocks_decoded < q.stats.blocks_in_scope,
        "data skipping must beat a full scan"
    );

    // ── 5. Point-in-time position lookup ─────────────────────────────────
    let t = duration * 0.4;
    if let Some(p) = store.position_at(device, t) {
        println!("device {device} at t = {t:.0} s: {p} (interpolated from the compressed log)");
    }

    std::fs::remove_dir_all(&dir).ok();
}
