//! Quickstart: simplify a small GPS track with OPERB and OPERB-A and
//! compare them against Douglas-Peucker.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use trajsimp::baselines::DouglasPeucker;
use trajsimp::metrics::{average_error, max_error};
use trajsimp::model::{BatchSimplifier, Trajectory};
use trajsimp::operb::{Operb, OperbA};

fn main() {
    // A fifteen-point trajectory shaped like Figure 1 of the paper:
    // a flat run, a climb, a crest and a descent.  Coordinates are meters,
    // one fix per second.
    let trajectory = Trajectory::from_xy(&[
        (0.0, 0.0),
        (10.0, 1.5),
        (20.0, -1.0),
        (30.0, 1.0),
        (40.0, -0.5),
        (50.0, 0.0),
        (57.0, 8.0),
        (64.0, 16.0),
        (70.0, 25.0),
        (80.0, 26.0),
        (90.0, 28.0),
        (95.0, 20.0),
        (100.0, 12.0),
        (105.0, 5.0),
        (110.0, -3.0),
    ]);
    let zeta = 5.0; // error bound in meters

    println!("input: {} points, ζ = {zeta} m\n", trajectory.len());

    let algorithms: Vec<Box<dyn BatchSimplifier>> = vec![
        Box::new(DouglasPeucker::new()),
        Box::new(Operb::new()),
        Box::new(OperbA::new()),
    ];

    for algo in &algorithms {
        let simplified = algo
            .simplify(&trajectory, zeta)
            .expect("valid error bound and trajectory");
        println!(
            "{:<8} → {} segments (compression ratio {:.2}), max error {:.2} m, avg error {:.2} m",
            algo.name(),
            simplified.num_segments(),
            simplified.compression_ratio(),
            max_error(&trajectory, &simplified),
            average_error(&trajectory, &simplified),
        );
        for (i, seg) in simplified.segments().iter().enumerate() {
            println!(
                "    L{i}: ({:7.2}, {:6.2}) → ({:7.2}, {:6.2})   covers points {:>2}..={:<2}{}",
                seg.segment.start.x,
                seg.segment.start.y,
                seg.segment.end.x,
                seg.segment.end.y,
                seg.first_index,
                seg.last_index,
                if seg.interpolated_start || seg.interpolated_end {
                    "  (patched)"
                } else {
                    ""
                }
            );
        }
        println!();
    }
}
