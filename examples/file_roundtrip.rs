//! File import / export: compress a trajectory file from disk.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example file_roundtrip -- input.csv 30
//! cargo run --release --example file_roundtrip -- trajectory.plt 30
//! ```
//!
//! * `.csv` files contain `x,y,t` records (planar meters / seconds);
//! * `.plt` files are GeoLife logs (projected to a local planar frame).
//!
//! Without arguments the example generates a GeoLife-like synthetic
//! trajectory, writes it to a temporary CSV, reads it back, compresses it
//! with OPERB-A and writes the simplified shape points next to it — i.e. a
//! full ingest → compress → export round trip.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

use trajsimp::data::io::{read_csv, read_plt, write_csv};
use trajsimp::data::{DatasetGenerator, DatasetKind};
use trajsimp::metrics::{average_error, max_error};
use trajsimp::model::{BatchSimplifier, Trajectory};
use trajsimp::operb::OperbA;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let zeta: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30.0);

    let (trajectory, source): (Trajectory, String) = match args.first() {
        Some(path) => {
            let file = File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
            let reader = BufReader::new(file);
            let traj = if path.ends_with(".plt") {
                read_plt(reader).expect("valid GeoLife .plt file")
            } else {
                read_csv(reader).expect("valid x,y,t CSV file")
            };
            (traj, path.clone())
        }
        None => {
            let traj =
                DatasetGenerator::for_kind(DatasetKind::GeoLife, 11).generate_trajectory(0, 3_000);
            let path = std::env::temp_dir().join("trajsimp_example_input.csv");
            let mut writer = BufWriter::new(File::create(&path).expect("temp file"));
            write_csv(&mut writer, &traj).expect("write temp csv");
            (traj, path.display().to_string())
        }
    };

    println!(
        "loaded {} points from {source} (duration {:.0} s, path length {:.1} km)",
        trajectory.len(),
        trajectory.duration(),
        trajectory.path_length() / 1000.0
    );

    let algorithm = OperbA::new();
    let simplified = algorithm
        .simplify(&trajectory, zeta)
        .expect("valid error bound");

    println!(
        "OPERB-A with ζ = {zeta} m: {} → {} segments (ratio {:.4}), max error {:.2} m, avg error {:.2} m",
        trajectory.len(),
        simplified.num_segments(),
        simplified.compression_ratio(),
        max_error(&trajectory, &simplified),
        average_error(&trajectory, &simplified),
    );

    // Export the simplified shape points as CSV next to the input.
    let out_path = PathBuf::from(format!("{source}.simplified.csv"));
    let shape = Trajectory::new(simplified.shape_points()).unwrap_or_else(|_| trajectory.clone());
    let mut writer = BufWriter::new(File::create(&out_path).expect("output file"));
    write_csv(&mut writer, &shape).expect("write output");
    println!("wrote simplified shape points to {}", out_path.display());
}
