//! `trajsimp` — command-line trajectory compression.
//!
//! ```text
//! trajsimp <input.csv|input.plt> [--algorithm operb-a] [--epsilon 30] [--output out.csv]
//! ```
//!
//! Reads a trajectory file (planar `x,y,t` CSV or a GeoLife `.plt` log),
//! simplifies it with the selected error-bounded algorithm and writes the
//! retained shape points as CSV, printing the compression statistics the
//! paper's evaluation reports (ratio, average error, maximum error,
//! throughput).

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

use trajsimp::baselines::{Bqs, DouglasPeucker, Fbqs, OpeningWindow, TdTr};
use trajsimp::data::io::{read_csv, read_plt};
use trajsimp::metrics::{average_error, max_error};
use trajsimp::model::{BatchSimplifier, Trajectory};
use trajsimp::operb::{Operb, OperbA};

const USAGE: &str = "usage: trajsimp <input.csv|input.plt> [--algorithm NAME] [--epsilon METERS] [--output FILE]\n\
                     algorithms: operb (default: operb-a), operb-a, raw-operb, raw-operb-a, dp, td-tr, opw, bqs, fbqs";

struct Options {
    input: String,
    algorithm: String,
    epsilon: f64,
    output: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input = None;
    let mut algorithm = "operb-a".to_string();
    let mut epsilon = 30.0;
    let mut output = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" | "-a" => {
                algorithm = it.next().ok_or("--algorithm needs a value")?.to_lowercase();
            }
            "--epsilon" | "-e" => {
                let v = it.next().ok_or("--epsilon needs a value")?;
                epsilon = v.parse().map_err(|_| format!("invalid epsilon '{v}'"))?;
            }
            "--output" | "-o" => {
                output = Some(it.next().ok_or("--output needs a file")?.to_string());
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(Options {
        input: input.ok_or(USAGE)?,
        algorithm,
        epsilon,
        output,
    })
}

fn algorithm_by_name(name: &str) -> Option<Box<dyn BatchSimplifier>> {
    Some(match name {
        "operb" => Box::new(Operb::new()),
        "raw-operb" => Box::new(Operb::raw()),
        "operb-a" => Box::new(OperbA::new()),
        "raw-operb-a" => Box::new(OperbA::raw()),
        "dp" | "douglas-peucker" => Box::new(DouglasPeucker::new()),
        "td-tr" | "tdtr" => Box::new(TdTr::new()),
        "opw" => Box::new(OpeningWindow::new()),
        "bqs" => Box::new(Bqs::new()),
        "fbqs" => Box::new(Fbqs::new()),
        _ => return None,
    })
}

fn load(path: &str) -> Result<Trajectory, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    if path.ends_with(".plt") {
        read_plt(reader).map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        read_csv(reader).map_err(|e| format!("cannot parse {path}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(algorithm) = algorithm_by_name(&options.algorithm) else {
        eprintln!("unknown algorithm '{}'\n{USAGE}", options.algorithm);
        return ExitCode::FAILURE;
    };
    let trajectory = match load(&options.input) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let start = Instant::now();
    let simplified = match algorithm.simplify(&trajectory, options.epsilon) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simplification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    println!("input        : {} ({} points)", options.input, trajectory.len());
    println!("algorithm    : {} (ζ = {} m)", algorithm.name(), options.epsilon);
    println!("segments     : {}", simplified.num_segments());
    println!("ratio        : {:.4}", simplified.compression_ratio());
    println!("max error    : {:.2} m", max_error(&trajectory, &simplified));
    println!("avg error    : {:.2} m", average_error(&trajectory, &simplified));
    println!(
        "time         : {:.2} ms ({:.0} points/s)",
        elapsed.as_secs_f64() * 1e3,
        trajectory.len() as f64 / elapsed.as_secs_f64().max(1e-12)
    );

    if let Some(out_path) = options.output {
        let file = match File::create(&out_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut writer = BufWriter::new(file);
        for p in simplified.shape_points() {
            if let Err(e) = writeln!(writer, "{},{},{}", p.x, p.y, p.t) {
                eprintln!("write error: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("output       : {out_path} ({} shape points)", simplified.num_shape_points());
    }
    ExitCode::SUCCESS
}
