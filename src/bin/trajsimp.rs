//! `trajsimp` — command-line trajectory compression.
//!
//! ```text
//! trajsimp <input.csv|input.plt> [--algorithm operb-a] [--epsilon 30] [--output out.csv]
//! trajsimp fleet [--trajectories 1000] [--points 500] [--workers N] [--algorithm operb]
//! trajsimp store --out DIR [--trajectories 200] [--input file.csv --device 7]
//! trajsimp query DIR (--device N --from T --to T | --window x0,y0,x1,y1 | --device N --at T)
//! trajsimp knn DIR --point x,y [-k 5] [--brute]
//! trajsimp geofence --fence downtown=0,0,500,500 [--waves 3]
//! ```
//!
//! The single-file mode reads a trajectory file (planar `x,y,t` CSV or a
//! GeoLife `.plt` log), simplifies it with the selected error-bounded
//! algorithm and writes the retained shape points as CSV, printing the
//! compression statistics the paper's evaluation reports (ratio, average
//! error, maximum error, throughput).
//!
//! The `fleet` subcommand generates a synthetic fleet of trajectory
//! streams, compresses it through the parallel pipeline of
//! `traj-pipeline`, verifies the error bound on every output and reports
//! the measured speedup over the sequential loop.
//!
//! The `store` subcommand compresses a fleet (synthetic, or a single
//! input file) straight into a persistent `traj-store` directory; the
//! `query` subcommand answers time-range, spatial-window and
//! point-in-time queries from such a directory, decoding only the blocks
//! whose metadata overlaps the query.
//!
//! The `knn` subcommand ranks the k stored devices nearest to a query
//! point set, pruning whole devices from the ζ-expanded block metadata
//! before touching any compressed payload; `--brute` cross-checks the
//! result against the exhaustive scan.  The `geofence` subcommand runs
//! the continuous-query engine live: it registers standing fences, keeps
//! ingesting waves of a synthetic fleet, and prints every alert as the
//! sealed blocks match.
//!
//! The `serve` subcommand puts the std-only HTTP query server of
//! `traj-service` in front of a sharded store — either a persisted store
//! directory (opened in crash-recovery mode) or a freshly compressed
//! synthetic fleet — and optionally keeps ingesting further waves of the
//! fleet live while serving.  `GET /shutdown` stops it gracefully.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

use trajsimp::baselines::{Bqs, DouglasPeucker, Fbqs, OpeningWindow, TdTr};
use trajsimp::data::io::{read_csv, read_plt};
use trajsimp::data::{DatasetGenerator, DatasetKind};
use trajsimp::geo::BoundingBox;
use trajsimp::metrics::{average_error, max_error};
use trajsimp::model::{BatchSimplifier, Trajectory};
use trajsimp::operb::{Operb, OperbA};
use trajsimp::pipeline::fleet::verify_error_bound;
use trajsimp::pipeline::{
    compress_fleet, compress_fleet_sequential, DeviceId, FleetAlgorithm, PipelineConfig, Speedup,
};
use trajsimp::store::{compress_fleet_into_store, EvictionKind, TrajStore};

const USAGE: &str = "usage: trajsimp <input.csv|input.plt> [--algorithm NAME] [--epsilon METERS] [--output FILE]\n\
       trajsimp fleet [--trajectories N] [--points N] [--workers N] [--batch N]\n\
                      [--algorithm NAME] [--epsilon METERS] [--dataset taxi|truck|sercar|geolife] [--seed N]\n\
       trajsimp store --out DIR [--trajectories N] [--points N] [--workers N] [--algorithm NAME]\n\
                      [--epsilon METERS] [--dataset NAME] [--seed N] [--format varint|for]\n\
                      [--input FILE [--device ID]]\n\
       trajsimp query DIR --device N --from T --to T   (time slice)\n\
       trajsimp query DIR --window x0,y0,x1,y1 [--from T --to T]   (spatial window)\n\
       trajsimp query DIR --device N --at T   (interpolated position)\n\
                      query also takes [--cache-bytes N] [--eviction lru|clock|sieve] [--profile]\n\
       trajsimp knn DIR --point x,y [--point x,y ...] [-k N] [--brute]\n\
                      [--cache-bytes N] [--eviction lru|clock|sieve]   (k-nearest trajectories)\n\
       trajsimp geofence --fence name=x0,y0,x1,y1 [--fence ...] [--waves N] [--shards N]\n\
                      [fleet flags]   (continuous geofence demo over live synthetic ingest)\n\
       trajsimp serve [DIR] [--addr HOST] [--port P] [--server-workers N] [--shards N] [--live WAVES]\n\
                      [--fence name=x0,y0,x1,y1]\n\
                      [--durable DIR] [--durability async|group-commit[:MS]]\n\
                      [--cache-bytes N] [--eviction lru|clock|sieve] [--slow-query-ms MS]\n\
                      [--no-shutdown-endpoint] [--trajectories N] [--points N] [--algorithm NAME]\n\
                      [--epsilon METERS] [--dataset NAME] [--seed N]   (HTTP query server; GET /shutdown stops it)\n\
                     algorithms: operb (default: operb-a), operb-a, raw-operb, raw-operb-a, dp, td-tr, opw, bqs, fbqs";

struct Options {
    input: String,
    algorithm: String,
    epsilon: f64,
    output: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input = None;
    let mut algorithm = "operb-a".to_string();
    let mut epsilon = 30.0;
    let mut output = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" | "-a" => {
                algorithm = it.next().ok_or("--algorithm needs a value")?.to_lowercase();
            }
            "--epsilon" | "-e" => {
                let v = it.next().ok_or("--epsilon needs a value")?;
                epsilon = v.parse().map_err(|_| format!("invalid epsilon '{v}'"))?;
            }
            "--output" | "-o" => {
                output = Some(it.next().ok_or("--output needs a file")?.to_string());
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(Options {
        input: input.ok_or(USAGE)?,
        algorithm,
        epsilon,
        output,
    })
}

fn algorithm_by_name(name: &str) -> Option<Box<dyn BatchSimplifier>> {
    Some(match name {
        "operb" => Box::new(Operb::new()),
        "raw-operb" => Box::new(Operb::raw()),
        "operb-a" => Box::new(OperbA::new()),
        "raw-operb-a" => Box::new(OperbA::raw()),
        "dp" | "douglas-peucker" => Box::new(DouglasPeucker::new()),
        "td-tr" | "tdtr" => Box::new(TdTr::new()),
        "opw" => Box::new(OpeningWindow::new()),
        "bqs" => Box::new(Bqs::new()),
        "fbqs" => Box::new(Fbqs::new()),
        _ => return None,
    })
}

fn load(path: &str) -> Result<Trajectory, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    if path.ends_with(".plt") {
        read_plt(reader).map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        read_csv(reader).map_err(|e| format!("cannot parse {path}: {e}"))
    }
}

struct FleetOptions {
    trajectories: usize,
    points: usize,
    workers: usize,
    batch: usize,
    algorithm: String,
    epsilon: f64,
    dataset: DatasetKind,
    seed: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            trajectories: 1000,
            points: 500,
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            batch: 256,
            algorithm: "operb".to_string(),
            epsilon: 30.0,
            dataset: DatasetKind::Taxi,
            seed: 20170401,
        }
    }
}

fn parse_fleet_args(args: &[String]) -> Result<FleetOptions, String> {
    let mut o = FleetOptions::default();
    let mut it = args.iter();
    fn value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trajectories" | "-n" => {
                let v = value(&mut it, arg)?;
                o.trajectories = v.parse().map_err(|_| format!("invalid count '{v}'"))?;
            }
            "--points" | "-p" => {
                let v = value(&mut it, arg)?;
                o.points = v.parse().map_err(|_| format!("invalid count '{v}'"))?;
            }
            "--workers" | "-w" => {
                let v = value(&mut it, arg)?;
                o.workers = v.parse().map_err(|_| format!("invalid count '{v}'"))?;
            }
            "--batch" | "-b" => {
                let v = value(&mut it, arg)?;
                o.batch = v.parse().map_err(|_| format!("invalid count '{v}'"))?;
            }
            "--algorithm" | "-a" => {
                o.algorithm = value(&mut it, arg)?.to_lowercase();
            }
            "--epsilon" | "-e" => {
                let v = value(&mut it, arg)?;
                o.epsilon = v.parse().map_err(|_| format!("invalid epsilon '{v}'"))?;
            }
            "--dataset" | "-d" => {
                let v = value(&mut it, arg)?;
                o.dataset = match v.to_ascii_lowercase().as_str() {
                    "taxi" => DatasetKind::Taxi,
                    "truck" => DatasetKind::Truck,
                    "sercar" => DatasetKind::SerCar,
                    "geolife" => DatasetKind::GeoLife,
                    _ => return Err(format!("unknown dataset '{v}'")),
                };
            }
            "--seed" | "-s" => {
                let v = value(&mut it, arg)?;
                o.seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if o.trajectories == 0 || o.points < 2 {
        return Err("fleet needs --trajectories >= 1 and --points >= 2".to_string());
    }
    if !o.epsilon.is_finite() || o.epsilon <= 0.0 {
        return Err(format!(
            "--epsilon must be a positive finite bound, got {}",
            o.epsilon
        ));
    }
    Ok(o)
}

fn run_fleet(options: &FleetOptions) -> Result<(), String> {
    let Some(algorithm) = FleetAlgorithm::by_name(&options.algorithm) else {
        return Err(format!("unknown algorithm '{}'", options.algorithm));
    };
    eprintln!(
        "generating {} {} trajectories of {} points each (seed {}) …",
        options.trajectories, options.dataset, options.points, options.seed
    );
    let generator = DatasetGenerator::for_kind(options.dataset, options.seed);
    let fleet: Vec<(DeviceId, Trajectory)> = (0..options.trajectories)
        .map(|i| {
            (
                i as DeviceId,
                generator.generate_trajectory(i, options.points),
            )
        })
        .collect();
    let total_points: usize = fleet.iter().map(|(_, t)| t.len()).sum();

    eprintln!("sequential reference ({}) …", algorithm.name());
    let sequential = compress_fleet_sequential(&fleet, options.epsilon, &algorithm);

    eprintln!("parallel pipeline ({} workers) …", options.workers);
    let config = PipelineConfig::new(options.epsilon)
        .with_workers(options.workers)
        .with_batch_size(options.batch);
    let mut parallel = compress_fleet(&fleet, &config, &algorithm);

    // Verify the error bound on every parallel output.
    let worst = verify_error_bound(&fleet, &mut parallel.results, options.epsilon)?;

    let total_segments: usize = parallel
        .results
        .iter()
        .filter_map(|r| r.output.as_ref().ok())
        .map(|s| s.num_segments())
        .sum();
    let speedup = Speedup {
        sequential: sequential.report.elapsed,
        parallel: parallel.report.elapsed,
    };
    println!(
        "fleet        : {} trajectories, {} points ({})",
        options.trajectories, total_points, options.dataset
    );
    println!(
        "algorithm    : {} (ζ = {} m)",
        algorithm.name(),
        options.epsilon
    );
    println!("segments     : {total_segments}");
    println!(
        "ratio        : {:.4}",
        total_segments as f64 / total_points.max(1) as f64
    );
    println!(
        "max error    : {worst:.2} m (bound holds on all {} streams)",
        fleet.len()
    );
    println!(
        "sequential   : {:.2} ms ({:.0} points/s)",
        sequential.report.elapsed.as_secs_f64() * 1e3,
        sequential.report.points_per_sec()
    );
    println!(
        "parallel     : {:.2} ms ({:.0} points/s, {} workers, batch {})",
        parallel.report.elapsed.as_secs_f64() * 1e3,
        parallel.report.points_per_sec(),
        parallel.report.workers,
        options.batch
    );
    println!("speedup      : {:.2}x", speedup.factor());
    Ok(())
}

struct StoreOptions {
    out: String,
    fleet: FleetOptions,
    input: Option<String>,
    device: DeviceId,
    format: trajsimp::model::codec::BlockFormat,
}

fn parse_store_args(args: &[String]) -> Result<StoreOptions, String> {
    let mut out = None;
    let mut input = None;
    let mut device: DeviceId = 0;
    let mut format = trajsimp::model::codec::BlockFormat::default();
    let mut fleet_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "-o" => {
                out = Some(it.next().ok_or("--out needs a directory")?.to_string());
            }
            "--input" | "-i" => {
                input = Some(it.next().ok_or("--input needs a file")?.to_string());
            }
            "--device" => {
                let v = it.next().ok_or("--device needs an id")?;
                device = v.parse().map_err(|_| format!("invalid device id '{v}'"))?;
            }
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs 'varint' or 'for'")?;
                format = trajsimp::model::codec::BlockFormat::from_name(v)
                    .ok_or_else(|| format!("unknown block format '{v}' (varint|for)"))?;
            }
            other => fleet_args.push(other.to_string()),
        }
    }
    // Everything else is shared with `fleet` (trajectories, points,
    // workers, algorithm, epsilon, dataset, seed).
    let fleet = parse_fleet_args(&fleet_args)?;
    Ok(StoreOptions {
        out: out.ok_or("store needs --out DIR")?,
        fleet,
        input,
        device,
        format,
    })
}

fn run_store(options: &StoreOptions) -> Result<(), String> {
    let Some(algorithm) = FleetAlgorithm::by_name(&options.fleet.algorithm) else {
        return Err(format!("unknown algorithm '{}'", options.fleet.algorithm));
    };
    let fleet: Vec<(DeviceId, Trajectory)> = match &options.input {
        Some(path) => {
            eprintln!("loading {path} as device {} …", options.device);
            vec![(options.device, load(path)?)]
        }
        None => {
            eprintln!(
                "generating {} {} trajectories of {} points each (seed {}) …",
                options.fleet.trajectories,
                options.fleet.dataset,
                options.fleet.points,
                options.fleet.seed
            );
            let generator = DatasetGenerator::for_kind(options.fleet.dataset, options.fleet.seed);
            (0..options.fleet.trajectories)
                .map(|i| {
                    (
                        i as DeviceId,
                        generator.generate_trajectory(i, options.fleet.points),
                    )
                })
                .collect()
        }
    };
    let config = PipelineConfig::new(options.fleet.epsilon)
        .with_workers(options.fleet.workers)
        .with_batch_size(options.fleet.batch);
    let mut store =
        TrajStore::new(trajsimp::store::StoreConfig::default().with_format(options.format));
    let start = Instant::now();
    let (_, ingested) = compress_fleet_into_store(&fleet, &config, &algorithm, &mut store)?;
    let out = std::path::Path::new(&options.out);
    store.save(out).map_err(|e| e.to_string())?;
    let stats = store.stats();
    println!(
        "store        : {} ({} devices, {} blocks, {} segments)",
        options.out, stats.devices, stats.blocks, stats.segments
    );
    println!(
        "algorithm    : {} (ζ = {} m)",
        algorithm.name(),
        options.fleet.epsilon
    );
    println!("block format : {}", options.format);
    println!("points       : {} (from {ingested} streams)", stats.points);
    println!(
        "stored bytes : {} ({:.2} B/point, {:.1}x smaller than raw)",
        stats.stored_bytes,
        stats.bytes_per_point(),
        stats.compression_factor()
    );
    println!(
        "time         : {:.2} ms ({:.0} points/s)",
        start.elapsed().as_secs_f64() * 1e3,
        stats.points as f64 / start.elapsed().as_secs_f64().max(1e-12)
    );
    Ok(())
}

struct QueryOptions {
    dir: String,
    device: Option<DeviceId>,
    from: Option<f64>,
    to: Option<f64>,
    at: Option<f64>,
    window: Option<BoundingBox>,
    cache_bytes: Option<usize>,
    eviction: EvictionKind,
    profile: bool,
}

/// Parses an `--eviction` value into a policy kind.
fn parse_eviction(value: &str) -> Result<EvictionKind, String> {
    EvictionKind::from_name(value)
        .ok_or_else(|| format!("--eviction must be one of lru, clock, sieve; got '{value}'"))
}

fn parse_query_args(args: &[String]) -> Result<QueryOptions, String> {
    let mut o = QueryOptions {
        dir: String::new(),
        device: None,
        from: None,
        to: None,
        at: None,
        window: None,
        cache_bytes: None,
        eviction: EvictionKind::default(),
        profile: false,
    };
    let mut it = args.iter();
    fn num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<f64, String> {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("invalid {flag} value '{v}'"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--device" | "-d" => {
                let v = it.next().ok_or("--device needs an id")?;
                o.device = Some(v.parse().map_err(|_| format!("invalid device id '{v}'"))?);
            }
            "--from" => o.from = Some(num(&mut it, arg)?),
            "--to" => o.to = Some(num(&mut it, arg)?),
            "--at" => o.at = Some(num(&mut it, arg)?),
            "--window" | "-w" => {
                let v = it.next().ok_or("--window needs x0,y0,x1,y1")?;
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("invalid window '{v}' (want x0,y0,x1,y1)"))?;
                if parts.len() != 4 {
                    return Err(format!("invalid window '{v}' (want 4 coordinates)"));
                }
                o.window = Some(BoundingBox {
                    min_x: parts[0].min(parts[2]),
                    min_y: parts[1].min(parts[3]),
                    max_x: parts[0].max(parts[2]),
                    max_y: parts[1].max(parts[3]),
                });
            }
            "--cache-bytes" => {
                let v = it.next().ok_or("--cache-bytes needs a byte count")?;
                o.cache_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --cache-bytes '{v}'"))?,
                );
            }
            "--eviction" => {
                let v = it.next().ok_or("--eviction needs a policy name")?;
                o.eviction = parse_eviction(v)?;
            }
            "--profile" => o.profile = true,
            other if o.dir.is_empty() && !other.starts_with('-') => {
                o.dir = other.to_string();
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if o.dir.is_empty() {
        return Err("query needs a store directory".to_string());
    }
    Ok(o)
}

fn run_query(options: &QueryOptions) -> Result<(), String> {
    let config = trajsimp::store::StoreConfig::default()
        .with_cache_bytes(options.cache_bytes)
        .with_eviction(options.eviction);
    let store = TrajStore::open_with(std::path::Path::new(&options.dir), config)
        .map_err(|e| e.to_string())?;
    let stats = store.stats();
    eprintln!(
        "opened {} ({} devices, {} blocks, {} segments)",
        options.dir, stats.devices, stats.blocks, stats.segments
    );
    // Under --profile the query runs traced and the span tree (index walk,
    // pager fetches, block decodes) is printed as a stage breakdown.
    let profile_guard = options
        .profile
        .then(|| trajsimp::obs::trace_begin("trajsimp query"));
    match (options.window, options.at, options.device) {
        // Spatial window query across the fleet.
        (Some(window), None, None) => {
            let time = match (options.from, options.to) {
                (Some(a), Some(b)) => Some((a, b)),
                (None, None) => None,
                _ => return Err("--from and --to must be given together".into()),
            };
            let q = store.window_query(&window, time);
            for m in &q.matches {
                println!("device {:<6} {:>5} segments", m.device, m.segments.len());
            }
            println!(
                "{} devices, {} segments; decoded {}/{} blocks (skip ratio {:.1}%)",
                q.matches.len(),
                q.stats.segments_returned,
                q.stats.blocks_decoded,
                q.stats.blocks_in_scope,
                q.stats.skip_ratio() * 100.0
            );
        }
        // Interpolated position.
        (None, Some(t), Some(device)) => match store.position_at(device, t) {
            Some(p) => println!("device {device} at t={t}: {p}"),
            None => println!("device {device} has no stored coverage at t={t}"),
        },
        // Time-range slice.
        (None, None, Some(device)) => {
            let (Some(from), Some(to)) = (options.from, options.to) else {
                return Err("time slice needs --from and --to".into());
            };
            let slice = store.time_slice(device, from, to);
            for s in &slice.segments {
                println!(
                    "[{:9.1}s → {:9.1}s] {} → {} (points {}..={})",
                    s.segment.start.t,
                    s.segment.end.t,
                    s.segment.start,
                    s.segment.end,
                    s.first_index,
                    s.last_index
                );
            }
            println!(
                "{} segments; decoded {}/{} blocks (skip ratio {:.1}%)",
                slice.stats.segments_returned,
                slice.stats.blocks_decoded,
                slice.stats.blocks_in_scope,
                slice.stats.skip_ratio() * 100.0
            );
        }
        _ => {
            return Err(
                "query wants exactly one of: --device with --from/--to, --device with --at, \
                 or --window"
                    .into(),
            )
        }
    }
    if let Some(guard) = profile_guard {
        let trace = guard.finish();
        eprintln!("profile:\n{}", trace.render_text());
    }
    if options.cache_bytes.is_some() {
        if let Some(cache) = store.memory_stats().cache {
            eprintln!(
                "cache[{}]: {} hits, {} misses, {} evictions; hit ratio {:.1}%, {} resident bytes",
                cache.policy,
                cache.hits,
                cache.misses,
                cache.evictions,
                cache.hit_ratio() * 100.0,
                cache.resident_bytes
            );
        }
    }
    Ok(())
}

struct KnnOptions {
    dir: String,
    points: Vec<trajsimp::geo::Point>,
    k: usize,
    brute: bool,
    cache_bytes: Option<usize>,
    eviction: EvictionKind,
}

fn parse_knn_args(args: &[String]) -> Result<KnnOptions, String> {
    let mut o = KnnOptions {
        dir: String::new(),
        points: Vec::new(),
        k: 1,
        brute: false,
        cache_bytes: None,
        eviction: EvictionKind::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--point" | "-p" => {
                let v = it.next().ok_or("--point needs x,y")?;
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("invalid point '{v}' (want x,y)"))?;
                if parts.len() != 2 || parts.iter().any(|c| !c.is_finite()) {
                    return Err(format!("invalid point '{v}' (want finite x,y)"));
                }
                o.points
                    .push(trajsimp::geo::Point::new(parts[0], parts[1], 0.0));
            }
            "--k" | "-k" => {
                let v = it.next().ok_or("--k needs a count")?;
                o.k = v.parse().map_err(|_| format!("invalid k '{v}'"))?;
            }
            "--brute" => o.brute = true,
            "--cache-bytes" => {
                let v = it.next().ok_or("--cache-bytes needs a byte count")?;
                o.cache_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --cache-bytes '{v}'"))?,
                );
            }
            "--eviction" => {
                let v = it.next().ok_or("--eviction needs a policy name")?;
                o.eviction = parse_eviction(v)?;
            }
            other if o.dir.is_empty() && !other.starts_with('-') => {
                o.dir = other.to_string();
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if o.dir.is_empty() {
        return Err("knn needs a store directory".to_string());
    }
    if o.points.is_empty() {
        return Err("knn needs at least one --point x,y".to_string());
    }
    if o.k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    Ok(o)
}

fn run_knn(options: &KnnOptions) -> Result<(), String> {
    let config = trajsimp::store::StoreConfig::default()
        .with_cache_bytes(options.cache_bytes)
        .with_eviction(options.eviction);
    let store = TrajStore::open_with(std::path::Path::new(&options.dir), config)
        .map_err(|e| e.to_string())?;
    let stats = store.stats();
    eprintln!(
        "opened {} ({} devices, {} blocks, {} segments)",
        options.dir, stats.devices, stats.blocks, stats.segments
    );
    let start = Instant::now();
    let result = store.knn(&options.points, options.k);
    let elapsed = start.elapsed();
    for (rank, n) in result.neighbors.iter().enumerate() {
        println!(
            "#{:<4} device {:<8} distance {:>10.2} m",
            rank + 1,
            n.device,
            n.distance
        );
    }
    let s = &result.stats;
    println!(
        "pruned       : {}/{} devices from metadata alone ({:.1}%)",
        s.devices_pruned,
        s.devices_total,
        s.device_prune_ratio() * 100.0
    );
    println!(
        "decoded      : {}/{} blocks ({:.1}% skipped)",
        s.blocks_decoded,
        s.blocks_total,
        s.block_prune_ratio() * 100.0
    );
    println!("time         : {:.2} ms", elapsed.as_secs_f64() * 1e3);
    if options.brute {
        let brute = store.knn_bruteforce(&options.points, options.k);
        let same =
            brute.neighbors.len() == result.neighbors.len()
                && brute.neighbors.iter().zip(&result.neighbors).all(|(a, b)| {
                    a.device == b.device && a.distance.to_bits() == b.distance.to_bits()
                });
        if !same {
            return Err(format!(
                "pruned kNN disagrees with brute force: {:?} vs {:?}",
                result.neighbors, brute.neighbors
            ));
        }
        println!(
            "verified     : bit-identical to brute force over all {} devices",
            s.devices_total
        );
    }
    Ok(())
}

/// Parses a `--fence` value `name=x0,y0,x1,y1` into a named region
/// (corners in either order).
fn parse_fence(spec: &str) -> Result<(String, BoundingBox), String> {
    let (name, coords) = spec
        .split_once('=')
        .ok_or_else(|| format!("invalid fence '{spec}' (want name=x0,y0,x1,y1)"))?;
    let parts: Vec<f64> = coords
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid fence '{spec}' (want name=x0,y0,x1,y1)"))?;
    if parts.len() != 4 {
        return Err(format!("invalid fence '{spec}' (want 4 coordinates)"));
    }
    Ok((
        name.to_string(),
        BoundingBox {
            min_x: parts[0].min(parts[2]),
            min_y: parts[1].min(parts[3]),
            max_x: parts[0].max(parts[2]),
            max_y: parts[1].max(parts[3]),
        },
    ))
}

struct GeofenceOptions {
    fences: Vec<(String, BoundingBox)>,
    waves: usize,
    shards: usize,
    fleet: FleetOptions,
}

fn parse_geofence_args(args: &[String]) -> Result<GeofenceOptions, String> {
    let mut fences = Vec::new();
    let mut waves = 3usize;
    let mut shards = 4usize;
    let mut fleet_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fence" | "-f" => {
                let v = it.next().ok_or("--fence needs name=x0,y0,x1,y1")?;
                fences.push(parse_fence(v)?);
            }
            "--waves" => {
                let v = it.next().ok_or("--waves needs a count")?;
                waves = v.parse().map_err(|_| format!("invalid --waves '{v}'"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a count")?;
                shards = v.parse().map_err(|_| format!("invalid --shards '{v}'"))?;
            }
            other => fleet_args.push(other.to_string()),
        }
    }
    let fleet = parse_fleet_args(&fleet_args)?;
    if fences.is_empty() {
        return Err("geofence needs at least one --fence name=x0,y0,x1,y1".to_string());
    }
    if waves == 0 || shards == 0 {
        return Err("geofence needs --waves >= 1 and --shards >= 1".to_string());
    }
    Ok(GeofenceOptions {
        fences,
        waves,
        shards,
        fleet,
    })
}

fn run_geofence(options: &GeofenceOptions) -> Result<(), String> {
    use trajsimp::store::{compress_fleet_into_shared_store, ShardedStore, StoreConfig};

    let Some(algorithm) = FleetAlgorithm::by_name(&options.fleet.algorithm) else {
        return Err(format!("unknown algorithm '{}'", options.fleet.algorithm));
    };
    eprintln!(
        "generating {} {} trajectories of {} points each (seed {}) …",
        options.fleet.trajectories, options.fleet.dataset, options.fleet.points, options.fleet.seed
    );
    let generator = DatasetGenerator::for_kind(options.fleet.dataset, options.fleet.seed);
    let fleet: Vec<(DeviceId, Trajectory)> = (0..options.fleet.trajectories)
        .map(|i| {
            (
                i as DeviceId,
                generator.generate_trajectory(i, options.fleet.points),
            )
        })
        .collect();

    let store = std::sync::Arc::new(ShardedStore::new(
        StoreConfig::default().with_block_segments(32),
        options.shards,
    ));
    for (name, region) in &options.fences {
        let id = store
            .geofences()
            .register(name, *region, None)
            .map_err(|e| format!("fence '{name}': {e}"))?;
        println!(
            "fence #{id} '{name}': ({:.1}, {:.1}) .. ({:.1}, {:.1})",
            region.min_x, region.min_y, region.max_x, region.max_y
        );
    }
    let subscription = store.geofences().subscribe(65536, None);

    let config = PipelineConfig::new(options.fleet.epsilon)
        .with_workers(options.fleet.workers)
        .with_batch_size(options.fleet.batch);
    let span = fleet.iter().map(|(_, t)| t.last().t).fold(0.0f64, f64::max) + 60.0;
    let mut total_alerts = 0usize;
    for wave in 0..options.waves {
        let shifted = shifted_fleet(&fleet, span * wave as f64);
        let (_, ingested) =
            compress_fleet_into_shared_store(&shifted, &config, &algorithm, &store)?;
        let mut alerts = subscription.poll(usize::MAX);
        alerts.sort_by_key(|a| a.seq);
        for a in &alerts {
            println!(
                "wave {:<3} alert #{:<5} fence '{}' device {:<6} block {:<4} t [{:.0}, {:.0}] ({} segments)",
                wave + 1,
                a.seq,
                a.fence_name,
                a.device,
                a.block,
                a.t_min,
                a.t_max,
                a.num_segments
            );
        }
        total_alerts += alerts.len();
        eprintln!(
            "wave {}/{}: ingested {} streams, {} alerts",
            wave + 1,
            options.waves,
            ingested,
            alerts.len()
        );
    }
    let stats = store.geofences().stats();
    println!(
        "alerts       : {total_alerts} across {} waves ({} dropped by this subscriber)",
        options.waves,
        subscription.dropped()
    );
    println!(
        "metadata walk: {} fence-block checks, {} dismissed without decode ({:.1}%)",
        stats.blocks_checked,
        stats.blocks_skipped,
        100.0 * stats.blocks_skipped as f64 / (stats.blocks_checked.max(1)) as f64
    );
    Ok(())
}

struct ServeOptions {
    dir: Option<String>,
    addr: String,
    port: u16,
    server_workers: usize,
    shards: usize,
    live_waves: usize,
    shutdown_endpoint: bool,
    durable: Option<String>,
    durability: trajsimp::store::DurabilityMode,
    cache_bytes: Option<usize>,
    eviction: EvictionKind,
    slow_query_ms: Option<u64>,
    fences: Vec<(String, BoundingBox)>,
    fleet: FleetOptions,
}

/// Parses a `--durability` value: `async`, `group-commit`, or
/// `group-commit:WINDOW_MS`.
fn parse_durability(value: &str) -> Result<trajsimp::store::DurabilityMode, String> {
    use trajsimp::store::DurabilityMode;
    match value {
        "async" => Ok(DurabilityMode::WalAsync),
        "group-commit" => Ok(DurabilityMode::WalGroupCommit(
            std::time::Duration::from_millis(2),
        )),
        other => {
            if let Some(ms) = other.strip_prefix("group-commit:") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| format!("--durability {other}: {e}"))?;
                Ok(DurabilityMode::WalGroupCommit(
                    std::time::Duration::from_millis(ms),
                ))
            } else {
                Err(format!(
                    "--durability must be 'async', 'group-commit' or 'group-commit:MS', got '{other}'"
                ))
            }
        }
    }
}

fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut dir = None;
    let mut addr = "127.0.0.1".to_string();
    let mut port = 7878u16;
    let mut server_workers = 4usize;
    let mut shards = 16usize;
    let mut live_waves = 0usize;
    let mut shutdown_endpoint = true;
    let mut durable = None;
    let mut durability =
        trajsimp::store::DurabilityMode::WalGroupCommit(std::time::Duration::from_millis(2));
    let mut cache_bytes = None;
    let mut eviction = EvictionKind::default();
    let mut slow_query_ms = None;
    let mut fences = Vec::new();
    let mut fleet_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            // The endpoint is unauthenticated; anyone binding beyond
            // loopback should turn it off (and stop the server by signal).
            "--no-shutdown-endpoint" => shutdown_endpoint = false,
            "--addr" => addr = value()?.to_string(),
            "--port" => port = value()?.parse().map_err(|e| format!("{arg}: {e}"))?,
            "--server-workers" => {
                server_workers = value()?.parse().map_err(|e| format!("{arg}: {e}"))?
            }
            "--shards" => shards = value()?.parse().map_err(|e| format!("{arg}: {e}"))?,
            "--live" => live_waves = value()?.parse().map_err(|e| format!("{arg}: {e}"))?,
            "--durable" => durable = Some(value()?.to_string()),
            "--durability" => durability = parse_durability(value()?)?,
            "--cache-bytes" => {
                let v = value()?;
                cache_bytes = Some(v.parse().map_err(|e| format!("{arg}: {e}"))?);
            }
            "--eviction" => eviction = parse_eviction(value()?)?,
            "--fence" => fences.push(parse_fence(value()?)?),
            "--slow-query-ms" => {
                slow_query_ms = Some(value()?.parse().map_err(|e| format!("{arg}: {e}"))?)
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(other.to_string());
            }
            other => {
                // A fleet flag passes through with its value, so it cannot
                // be mistaken for the store-directory positional.
                fleet_args.push(other.to_string());
                if let Some(v) = it.next() {
                    fleet_args.push(v.to_string());
                }
            }
        }
    }
    // Everything else (trajectories, points, workers, algorithm, epsilon,
    // dataset, seed) is shared with `fleet` and used for synthetic mode.
    let fleet = parse_fleet_args(&fleet_args)?;
    Ok(ServeOptions {
        dir,
        addr,
        port,
        server_workers,
        shards,
        live_waves,
        shutdown_endpoint,
        durable,
        durability,
        cache_bytes,
        eviction,
        slow_query_ms,
        fences,
        fleet,
    })
}

/// `fleet` with every timestamp shifted forward by `offset` seconds — the
/// "next wave" of a live feed (per-device logs are append-only in time).
fn shifted_fleet(fleet: &[(DeviceId, Trajectory)], offset: f64) -> Vec<(DeviceId, Trajectory)> {
    fleet
        .iter()
        .map(|(device, traj)| {
            let points = traj
                .points()
                .iter()
                .map(|p| trajsimp::geo::Point::new(p.x, p.y, p.t + offset))
                .collect();
            (*device, Trajectory::new_unchecked(points))
        })
        .collect()
}

fn run_serve(options: &ServeOptions) -> Result<(), String> {
    use trajsimp::service::{Server, ServiceConfig};
    use trajsimp::store::{compress_fleet_into_shared_store, ShardedStore, StoreConfig};

    let Some(algorithm) = FleetAlgorithm::by_name(&options.fleet.algorithm) else {
        return Err(format!("unknown algorithm '{}'", options.fleet.algorithm));
    };
    if options.dir.is_some() && options.live_waves > 0 {
        // Live waves re-compress the synthetic fleet; a persisted store
        // has no originals to extend, so the flag would silently do
        // nothing — refuse instead.
        return Err("--live requires synthetic mode (omit the store directory)".to_string());
    }
    if options.dir.is_some() && options.durable.is_some() {
        return Err(
            "--durable opens its own store directory; it cannot be combined with the \
             read-only store-directory positional"
                .to_string(),
        );
    }
    let mut live_fleet = None;
    let store = match &options.dir {
        Some(dir) => {
            // Recovery mode: after a crash mid-append the store comes back
            // up with the longest valid log prefix instead of refusing.
            let config = StoreConfig::default()
                .with_cache_bytes(options.cache_bytes)
                .with_eviction(options.eviction);
            let (store, report) =
                ShardedStore::open_recover_with(std::path::Path::new(dir), options.shards, config)
                    .map_err(|e| e.to_string())?;
            if report.is_clean() {
                eprintln!("opened {dir} ({} blocks)", report.blocks_recovered);
            } else {
                eprintln!(
                    "recovered {dir}: kept {}/{} blocks, dropped {} bytes ({})",
                    report.blocks_recovered,
                    report.manifest_blocks,
                    report.bytes_dropped,
                    report.dropped_reason.as_deref().unwrap_or("count mismatch"),
                );
            }
            std::sync::Arc::new(store)
        }
        None => {
            eprintln!(
                "generating {} {} trajectories of {} points each (seed {}) …",
                options.fleet.trajectories,
                options.fleet.dataset,
                options.fleet.points,
                options.fleet.seed
            );
            let generator = DatasetGenerator::for_kind(options.fleet.dataset, options.fleet.seed);
            let fleet: Vec<(DeviceId, Trajectory)> = (0..options.fleet.trajectories)
                .map(|i| {
                    (
                        i as DeviceId,
                        generator.generate_trajectory(i, options.fleet.points),
                    )
                })
                .collect();
            let store_config = StoreConfig::default()
                .with_block_segments(32)
                .with_cache_bytes(options.cache_bytes)
                .with_eviction(options.eviction);
            let store = match &options.durable {
                // Durable live ingest: every acknowledged stream is in the
                // write-ahead log before the sink moves on, and a crash
                // recovers to exactly the acknowledged prefix.
                Some(dir) => {
                    let (store, report) = ShardedStore::open_durable(
                        std::path::Path::new(dir),
                        options.shards,
                        store_config.with_durability(options.durability),
                    )
                    .map_err(|e| format!("open durable store {dir}: {e}"))?;
                    if report.is_clean() {
                        eprintln!(
                            "durable store {dir}: {} blocks, {} ingests replayed from wal",
                            store.stats().blocks,
                            report.wal.ingests_replayed
                        );
                    } else {
                        eprintln!(
                            "durable store {dir} recovered: {} ingests replayed, {} incomplete, \
                             {} rejected, {} wal bytes dropped",
                            report.wal.ingests_replayed,
                            report.wal.ingests_incomplete,
                            report.wal.ingests_rejected,
                            report.wal.bytes_dropped,
                        );
                    }
                    std::sync::Arc::new(store)
                }
                None => std::sync::Arc::new(ShardedStore::new(store_config, options.shards)),
            };
            // A durable directory that already holds data (recovered or
            // checkpointed) keeps it: the initial synthetic ingest is the
            // time range the store already covers, so re-running it would
            // only bounce off the per-device out-of-order guard.  Live
            // waves resume *past* the recovered data instead (below).
            if store.stats().points == 0 {
                let config = PipelineConfig::new(options.fleet.epsilon)
                    .with_workers(options.fleet.workers)
                    .with_batch_size(options.fleet.batch);
                let (_, ingested) =
                    compress_fleet_into_shared_store(&fleet, &config, &algorithm, &store)?;
                eprintln!("ingested {ingested} streams");
            } else {
                eprintln!(
                    "resuming durable store with {} points — skipping the initial synthetic \
                     ingest",
                    store.stats().points
                );
            }
            live_fleet = Some(fleet);
            store
        }
    };

    // Standing fences watch ingests from here on (forward-only); poll
    // them with GET /subscribe.  A durable store reloads its persisted
    // fences, so a same-named fence is kept rather than duplicated.
    for (name, region) in &options.fences {
        if store.geofences().fences().iter().any(|f| f.name == *name) {
            eprintln!("geofence '{name}' already registered (persisted) — keeping it");
            continue;
        }
        let id = store
            .geofences()
            .register(name, *region, None)
            .map_err(|e| format!("--fence {name}: {e}"))?;
        eprintln!(
            "geofence #{id} '{name}': ({:.1}, {:.1}) .. ({:.1}, {:.1}) — poll /subscribe",
            region.min_x, region.min_y, region.max_x, region.max_y
        );
    }

    let mut service_config = ServiceConfig::default().with_workers(options.server_workers);
    service_config.enable_shutdown_endpoint = options.shutdown_endpoint;
    if let Some(ms) = options.slow_query_ms {
        // 0 traces every request into the slow log — handy for probing a
        // healthy server's span tree.
        service_config =
            service_config.with_slow_query_threshold(Some(std::time::Duration::from_millis(ms)));
    }
    if options.shutdown_endpoint && options.addr != "127.0.0.1" && options.addr != "localhost" {
        eprintln!(
            "warning: binding {} with the unauthenticated /shutdown endpoint enabled — \
             anyone who can reach the port can stop the server; consider --no-shutdown-endpoint",
            options.addr
        );
    }
    let server = Server::start(
        std::sync::Arc::clone(&store),
        (options.addr.as_str(), options.port),
        service_config,
    )
    .map_err(|e| format!("cannot bind {}:{}: {e}", options.addr, options.port))?;
    let stats = store.stats();
    println!("listening on http://{}", server.local_addr());
    println!(
        "serving {} devices, {} blocks, {} segments ({} shards, {} workers); {}",
        stats.devices,
        stats.blocks,
        stats.segments,
        store.num_shards(),
        options.server_workers,
        if options.shutdown_endpoint {
            "GET /shutdown stops"
        } else {
            "shutdown endpoint disabled — stop by signal"
        }
    );

    // Live mode: keep compressing later waves of the same fleet into the
    // store while the server answers queries — ingest and reads overlap.
    let ingest_thread = match (options.live_waves, live_fleet) {
        (waves, Some(fleet)) if waves > 0 => {
            let store = std::sync::Arc::clone(&store);
            let config = PipelineConfig::new(options.fleet.epsilon)
                .with_workers(options.fleet.workers)
                .with_batch_size(options.fleet.batch);
            let algorithm_name = options.fleet.algorithm.clone();
            let span = fleet.iter().map(|(_, t)| t.last().t).fold(0.0f64, f64::max) + 60.0;
            // Each wave shifts the fleet by `span`; the initial ingest is
            // wave 0.  A resumed durable store starts past everything it
            // already holds — a partially ingested wave (crash mid-wave)
            // is rounded up and skipped whole, so no device replays time
            // it has already logged.
            let per_wave: usize = fleet.iter().map(|(_, t)| t.len()).sum();
            let first = store.stats().points.div_ceil(per_wave.max(1)).max(1);
            Some(std::thread::spawn(move || {
                let algorithm =
                    FleetAlgorithm::by_name(&algorithm_name).expect("algorithm validated above");
                for offset in 0..waves {
                    let (wave, n_of) = (first + offset, offset + 1);
                    let shifted = shifted_fleet(&fleet, span * wave as f64);
                    match compress_fleet_into_shared_store(&shifted, &config, &algorithm, &store) {
                        Ok((_, n)) => eprintln!("live wave {n_of}/{waves}: ingested {n} streams"),
                        Err(e) => {
                            eprintln!("live wave {n_of}/{waves} failed: {e}");
                            return;
                        }
                    }
                }
            }))
        }
        _ => None,
    };

    let final_stats = server.join();
    if let Some(h) = ingest_thread {
        let _ = h.join();
    }
    if options.durable.is_some() {
        // A graceful shutdown folds the WAL into the main files, so the
        // next open starts from a clean checkpoint instead of a replay.
        match store.checkpoint() {
            Ok(()) => eprintln!("checkpointed durable store on shutdown"),
            Err(e) => eprintln!("warning: shutdown checkpoint failed: {e}"),
        }
    }
    println!(
        "served {} requests ({} client errors, {} rejected), mean handler latency {:.0} µs, skip ratio {:.1}%",
        final_stats.requests,
        final_stats.client_errors,
        final_stats.rejected,
        final_stats.mean_latency_us(),
        final_stats.skip_ratio() * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            return match parse_serve_args(&args[1..]).and_then(|o| run_serve(&o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("store") => {
            return match parse_store_args(&args[1..]).and_then(|o| run_store(&o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("query") => {
            return match parse_query_args(&args[1..]).and_then(|o| run_query(&o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("knn") => {
            return match parse_knn_args(&args[1..]).and_then(|o| run_knn(&o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("geofence") => {
            return match parse_geofence_args(&args[1..]).and_then(|o| run_geofence(&o)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}\n{USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    if args.first().map(String::as_str) == Some("fleet") {
        let options = match parse_fleet_args(&args[1..]) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        return match run_fleet(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(algorithm) = algorithm_by_name(&options.algorithm) else {
        eprintln!("unknown algorithm '{}'\n{USAGE}", options.algorithm);
        return ExitCode::FAILURE;
    };
    let trajectory = match load(&options.input) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let start = Instant::now();
    let simplified = match algorithm.simplify(&trajectory, options.epsilon) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simplification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    println!(
        "input        : {} ({} points)",
        options.input,
        trajectory.len()
    );
    println!(
        "algorithm    : {} (ζ = {} m)",
        algorithm.name(),
        options.epsilon
    );
    println!("segments     : {}", simplified.num_segments());
    println!("ratio        : {:.4}", simplified.compression_ratio());
    println!(
        "max error    : {:.2} m",
        max_error(&trajectory, &simplified)
    );
    println!(
        "avg error    : {:.2} m",
        average_error(&trajectory, &simplified)
    );
    println!(
        "time         : {:.2} ms ({:.0} points/s)",
        elapsed.as_secs_f64() * 1e3,
        trajectory.len() as f64 / elapsed.as_secs_f64().max(1e-12)
    );

    if let Some(out_path) = options.output {
        let file = match File::create(&out_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut writer = BufWriter::new(file);
        for p in simplified.shape_points() {
            if let Err(e) = writeln!(writer, "{},{},{}", p.x, p.y, p.t) {
                eprintln!("write error: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "output       : {out_path} ({} shape points)",
            simplified.num_shape_points()
        );
    }
    ExitCode::SUCCESS
}
