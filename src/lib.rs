//! Umbrella crate re-exporting the whole `trajsimp` workspace.
//!
//! See the individual crates for details:
//! [`traj_geo`], [`traj_model`], [`traj_data`], [`traj_baselines`],
//! [`operb`], [`traj_metrics`], [`traj_pipeline`], [`traj_store`],
//! [`traj_service`].

pub use operb;
pub use traj_baselines as baselines;
pub use traj_data as data;
pub use traj_geo as geo;
pub use traj_metrics as metrics;
pub use traj_model as model;
pub use traj_obs as obs;
pub use traj_pipeline as pipeline;
pub use traj_service as service;
pub use traj_store as store;
