#!/usr/bin/env bash
# The full workspace gate: release build, tests, rustdoc, clippy.
# Usage: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
