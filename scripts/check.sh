#!/usr/bin/env bash
# The full workspace gate: formatting, release build, tests, the storage
# engine's example + bench smoke runs, rustdoc, clippy.
# Usage: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> store example (pipeline → store → queries)"
cargo run --release --example store_query

echo "==> store_bench smoke run (100 devices, skip ratio + ζ verification)"
cargo run --release -p traj-bench --bin store_bench -- --devices 100 --points 150 --windows 6

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
