#!/usr/bin/env bash
# The full workspace gate: formatting, release build, tests, the storage
# engine's example + bench smoke runs, the bench-regression comparator,
# rustdoc, clippy.
# Usage: ./scripts/check.sh
#
# The bench gate diffs the fresh BENCH_<name>.json reports against the
# committed BENCH_baseline.json and fails on a gated regression past the
# tolerance (default 10%; override with BENCH_TOLERANCE=0.25 on noisy
# hosts).  After an intentional performance change, refresh the baseline:
#
#   BENCH_REGEN=1 ./scripts/check.sh        # reruns benches, rewrites BENCH_baseline.json
#
# then commit the updated BENCH_baseline.json with the change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection + fuzz + concurrency suites (release)"
cargo test --release -q -p traj-model --test fuzz_codec
cargo test --release -q -p traj-store --test fault_injection
cargo test --release -q -p traj-store --test concurrent_stress
cargo test --release -q -p traj-store --test golden_e2e

echo "==> query engine suites: kNN vs brute force, geofence exactly-once, planner, golden fixtures (release)"
cargo test --release -q -p traj-store --test query_engine
cargo test --release -q -p traj-store --test query_golden
cargo test --release -q -p traj-service --test query_endpoints

echo "==> crash-recovery gate: WAL crash-point sweep + SIGKILL'd live server (release)"
cargo test --release -q -p traj-store --test crash_sweep
cargo test --release -q --test serve_live_crash

echo "==> store example (pipeline → store → queries)"
cargo run --release --example store_query

echo "==> codec_bench (both block formats, differential verification + throughput)"
BENCH_OUT=target/bench-reports
mkdir -p "$BENCH_OUT"
cargo run --release -p traj-bench --bin codec_bench -- --out "$BENCH_OUT"

echo "==> store_bench smoke run (100 devices, skip ratio + ζ verification + out-of-core gate)"
# The out-of-core section reopens the store with the payload cache capped
# at stored_bytes/10 under each eviction policy (lru, clock, sieve),
# requires every answer byte-identical to the in-memory ζ-verified one,
# and fails below a 50% steady-state hit ratio.
cargo run --release -p traj-bench --bin store_bench -- --devices 100 --points 150 --windows 6 --out "$BENCH_OUT"

echo "==> query_bench (kNN prune ratios + exactly-once geofence alerts + planner, all verified)"
# Every pruned kNN ranking must be bit-identical to the exhaustive scan,
# and the fired geofence alerts must equal the qualifying set recomputed
# from block metadata; the prune/skip ratios and alert count are gated.
cargo run --release -p traj-bench --bin query_bench -- --out "$BENCH_OUT"

echo "==> geofence CLI smoke (live waves + standing fences through trajsimp)"
cargo run --release --bin trajsimp -- geofence --fence center=-800,-800,800,800 \
    --waves 2 --trajectories 16 --points 120 > /dev/null

echo "==> serve smoke test (in-process server + test client: 200 + valid JSON + shutdown)"
cargo test --release -q -p traj-service --test serve_http smoke_start_request_shutdown

echo "==> /metrics smoke (CLI store → paged serve → Prometheus scrape + /trace span tree)"
# Starts a real trajsimp serve child over a persisted store, scrapes
# /metrics (valid exposition text, required series for every subsystem,
# >= 20 distinct series) and checks /trace parents index walk, pager
# fetch and decode spans correctly.
cargo test --release -q --test metrics_smoke

echo "==> service_bench (32 concurrent clients, 100+ devices, 0 ζ violations required)"
cargo run --release -p traj-bench --bin service_bench -- --devices 100 --points 120 --clients 32 --requests 10 --out "$BENCH_OUT"

echo "==> bench-regression gate (BENCH_*.json vs committed BENCH_baseline.json)"
# The codec and store reports are gated; the service report is recorded in
# the baseline but its QPS gate is only meaningful on quiet hardware, so
# check.sh compares it with a loose tolerance instead of the default.
cargo run --release -p traj-bench --bin bench_compare -- \
    --baseline BENCH_baseline.json \
    "$BENCH_OUT/BENCH_codec.json" "$BENCH_OUT/BENCH_store.json" "$BENCH_OUT/BENCH_query.json"
BENCH_TOLERANCE="${BENCH_TOLERANCE_SERVICE:-0.60}" \
    cargo run --release -p traj-bench --bin bench_compare -- \
    --baseline BENCH_baseline.json \
    "$BENCH_OUT/BENCH_service.json"

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
