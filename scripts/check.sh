#!/usr/bin/env bash
# The full workspace gate: formatting, release build, tests, the storage
# engine's example + bench smoke runs, rustdoc, clippy.
# Usage: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection + fuzz + concurrency suites (release)"
cargo test --release -q -p traj-model --test fuzz_codec
cargo test --release -q -p traj-store --test fault_injection
cargo test --release -q -p traj-store --test concurrent_stress
cargo test --release -q -p traj-store --test golden_e2e

echo "==> crash-recovery gate: WAL crash-point sweep + SIGKILL'd live server (release)"
cargo test --release -q -p traj-store --test crash_sweep
cargo test --release -q --test serve_live_crash

echo "==> store example (pipeline → store → queries)"
cargo run --release --example store_query

echo "==> store_bench smoke run (100 devices, skip ratio + ζ verification)"
cargo run --release -p traj-bench --bin store_bench -- --devices 100 --points 150 --windows 6

echo "==> serve smoke test (in-process server + test client: 200 + valid JSON + shutdown)"
cargo test --release -q -p traj-service --test serve_http smoke_start_request_shutdown

echo "==> service_bench (32 concurrent clients, 100+ devices, 0 ζ violations required)"
cargo run --release -p traj-bench --bin service_bench -- --devices 100 --points 120 --clients 32 --requests 10

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
